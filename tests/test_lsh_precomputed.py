"""Tests for LSH-DBSCAN, PrecomputedMetric, CachedMetric, the new
generators, and the cover-tree kNN query."""

import numpy as np
import pytest

from repro.baselines import LSHDBSCAN, OriginalDBSCAN
from repro.covertree import CoverTree
from repro.datasets import make_spirals, make_swiss_roll
from repro.evaluation import adjusted_rand_index
from repro.metricspace import (
    CachedMetric,
    EditDistanceMetric,
    EuclideanMetric,
    MetricDataset,
    PrecomputedMetric,
)


class TestLSHDBSCAN:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([
            rng.normal(0.0, 0.3, size=(60, 4)),
            rng.normal(6.0, 0.3, size=(60, 4)),
        ])
        truth = np.repeat([0, 1], 60)
        result = LSHDBSCAN(1.5, 5, n_tables=10, seed=0).fit(MetricDataset(pts))
        assert adjusted_rand_index(truth, result.labels) > 0.95

    def test_cores_subset_of_true_cores(self):
        """LSH can miss neighbors, so its core set underestimates."""
        rng = np.random.default_rng(1)
        pts = rng.normal(0.0, 1.0, size=(150, 3))
        ds = MetricDataset(pts)
        ref = OriginalDBSCAN(0.8, 5).fit(ds)
        lsh = LSHDBSCAN(0.8, 5, n_tables=6, seed=0).fit(ds)
        assert np.all(~lsh.core_mask | ref.core_mask)

    def test_more_tables_more_recall(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(0.0, 1.0, size=(200, 3))
        ds = MetricDataset(pts)
        few = LSHDBSCAN(0.8, 5, n_tables=1, n_projections=8, seed=0).fit(ds)
        many = LSHDBSCAN(0.8, 5, n_tables=16, n_projections=8, seed=0).fit(ds)
        assert many.core_mask.sum() >= few.core_mask.sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            LSHDBSCAN(1.0, 5, n_tables=0)
        with pytest.raises(ValueError):
            LSHDBSCAN(1.0, 5, bucket_width=0.0)
        ds = MetricDataset(["ab"], EditDistanceMetric())
        with pytest.raises(ValueError):
            LSHDBSCAN(1.0, 2).fit(ds)

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(80, 2))
        ds = MetricDataset(pts)
        a = LSHDBSCAN(0.5, 4, seed=7).fit(ds)
        b = LSHDBSCAN(0.5, 4, seed=7).fit(ds)
        assert np.array_equal(a.labels, b.labels)


class TestPrecomputedMetric:
    def test_roundtrip(self):
        matrix = np.array([[0.0, 1.0, 4.0], [1.0, 0.0, 3.0], [4.0, 3.0, 0.0]])
        metric = PrecomputedMetric(matrix)
        ds = MetricDataset(metric.indices(), metric)
        assert ds.distance(0, 2) == 4.0
        assert ds.distances_from(1).tolist() == [1.0, 0.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecomputedMetric(np.array([[0.0, 1.0]]))  # not square
        with pytest.raises(ValueError):
            PrecomputedMetric(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asym
        with pytest.raises(ValueError):
            PrecomputedMetric(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ValueError):
            PrecomputedMetric(np.array([[1.0, 0.0], [0.0, 0.0]]))  # diag

    def test_validate_false_skips_checks(self):
        m = PrecomputedMetric(np.array([[0.0, 1.0], [2.0, 0.0]]), validate=False)
        assert m.distance(0, 1) == 1.0

    def test_dbscan_over_precomputed(self):
        """A full DBSCAN run against a distance table only."""
        rng = np.random.default_rng(4)
        pts = np.vstack([
            rng.normal(0.0, 0.2, size=(30, 2)),
            rng.normal(5.0, 0.2, size=(30, 2)),
        ])
        matrix = EuclideanMetric().pairwise(pts)
        metric = PrecomputedMetric(matrix)
        ds = MetricDataset(metric.indices(), metric)
        result = OriginalDBSCAN(0.6, 4).fit(ds)
        assert result.n_clusters == 2


class TestCachedMetric:
    def test_values_preserved(self):
        cached = CachedMetric(EditDistanceMetric())
        assert cached.distance("kitten", "sitting") == 3.0
        assert cached.distance("sitting", "kitten") == 3.0  # symmetric key
        assert cached.hits == 1
        assert cached.misses == 1

    def test_clear(self):
        cached = CachedMetric(EditDistanceMetric())
        cached.distance("a", "b")
        cached.clear()
        assert cached.hits == 0 and cached.misses == 0
        cached.distance("a", "b")
        assert cached.misses == 1

    def test_batch_uses_cache(self):
        cached = CachedMetric(EditDistanceMetric())
        cached.distance_many("abc", ["abd", "abe"])
        cached.distance_many("abc", ["abd", "abe"])
        assert cached.hits == 2

    def test_speeds_up_repeated_clustering(self):
        """Two solver runs over a cached edit metric hit the cache on
        the second pass."""
        strings = ["aaa", "aab", "abb", "zzz", "zzy", "qqqqqq"]
        cached = CachedMetric(EditDistanceMetric())
        ds = MetricDataset(strings, cached)
        OriginalDBSCAN(1.0, 2).fit(ds)
        misses_after_first = cached.misses
        OriginalDBSCAN(1.0, 2).fit(ds)
        assert cached.misses == misses_after_first  # all hits second time


class TestNewGenerators:
    def test_spirals_shapes_and_determinism(self):
        a, ya = make_spirals(n=200, seed=1)
        b, yb = make_spirals(n=200, seed=1)
        assert a.shape == (200, 2)
        assert np.array_equal(a, b) and np.array_equal(ya, yb)

    def test_spirals_arms(self):
        _, y = make_spirals(n=300, n_arms=3, outlier_fraction=0.0, seed=0)
        assert set(np.unique(y)) == {0, 1, 2}

    def test_spirals_dbscan_separates_kmeans_cannot(self):
        from repro.baselines import kmeans

        pts, y = make_spirals(n=500, n_arms=2, noise=0.02, seed=0)
        ds = MetricDataset(pts)
        db = OriginalDBSCAN(0.35, 4).fit(ds)
        km = kmeans(pts, 2, seed=0)
        assert adjusted_rand_index(y, db.labels) > adjusted_rand_index(
            y, km.labels
        )

    def test_spirals_validation(self):
        with pytest.raises(ValueError):
            make_spirals(n_arms=0)

    def test_swiss_roll_is_intrinsically_2d(self):
        pts, y = make_swiss_roll(n=400, noise=0.0, seed=0)
        assert pts.shape == (400, 3)
        assert set(np.unique(y)) == {0, 1, 2}
        # With zero noise the points satisfy the exact roll
        # parametrization (t cos t, h, t sin t): recover t as the radius
        # in the x-z plane and verify x == t cos t — i.e. the data has
        # exactly two degrees of freedom (t, h).
        radius = np.hypot(pts[:, 0], pts[:, 2])
        assert np.allclose(pts[:, 0], radius * np.cos(radius), atol=1e-9)
        assert np.allclose(pts[:, 2], radius * np.sin(radius), atol=1e-9)


class TestCoverTreeKNN:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        ds = MetricDataset(rng.normal(size=(150, 3)))
        tree = CoverTree(ds)
        for k in (1, 3, 10):
            q = rng.normal(size=3)
            got = tree.knn(q, k)
            dists = ds.distances_point(q)
            want = np.sort(dists)[:k]
            assert np.allclose([d for _, d in got], want, atol=1e-9)

    def test_k_larger_than_tree(self):
        ds = MetricDataset(np.arange(4, dtype=float).reshape(-1, 1))
        tree = CoverTree(ds)
        out = tree.knn(np.array([0.0]), 10)
        assert len(out) == 4

    def test_duplicates_counted(self):
        pts = np.array([[0.0], [0.0], [5.0]])
        tree = CoverTree(MetricDataset(pts))
        out = tree.knn(np.array([0.1]), 2)
        assert sorted(i for i, _ in out) == [0, 1]

    def test_invalid_k(self):
        tree = CoverTree(MetricDataset(np.array([[0.0]])))
        with pytest.raises(ValueError):
            tree.knn(np.array([0.0]), 0)

    def test_empty_tree(self):
        ds = MetricDataset(np.array([[0.0]]))
        tree = CoverTree(ds, indices=[])
        assert tree.knn(np.array([0.0]), 3) == []
