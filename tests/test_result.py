"""Tests for the shared ClusteringResult container."""

import numpy as np
import pytest

from repro.core import ClusteringResult, PointType


class TestBasics:
    def test_counts(self):
        r = ClusteringResult(labels=[0, 0, 1, -1, 1, -1])
        assert r.n == 6
        assert r.n_clusters == 2
        assert r.n_noise == 2

    def test_cluster_sizes(self):
        r = ClusteringResult(labels=[0, 0, 1, -1])
        assert r.cluster_sizes() == {0: 2, 1: 1}

    def test_all_noise(self):
        r = ClusteringResult(labels=[-1, -1])
        assert r.n_clusters == 0
        assert r.cluster_sizes() == {}

    def test_labels_coerced_int64(self):
        r = ClusteringResult(labels=np.array([0.0, 1.0]))
        assert r.labels.dtype == np.int64


class TestCoreMask:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusteringResult(labels=[0, 1], core_mask=[True])

    def test_point_types(self):
        r = ClusteringResult(
            labels=[0, 0, -1], core_mask=[True, False, False]
        )
        types = r.point_types()
        assert types[0] == PointType.CORE
        assert types[1] == PointType.BORDER
        assert types[2] == PointType.NOISE

    def test_point_types_requires_mask(self):
        with pytest.raises(ValueError):
            ClusteringResult(labels=[0]).point_types()

    def test_summary_string(self):
        r = ClusteringResult(labels=[0, 0, -1], core_mask=[True, True, False])
        text = r.summary()
        assert "3 points" in text
        assert "1 clusters" in text
        assert "2 core" in text
