"""Tests for Algorithm 3 (streaming ρ-approximate DBSCAN).

The streaming solver must satisfy the same sandwich guarantee as the
batch approximation, use exactly three passes, and keep its memory
footprint (``|E| + |M|``) bounded independent of how the data grows
inside a fixed domain.
"""

import numpy as np
import pytest

from repro.baselines import OriginalDBSCAN
from repro.core import StreamingApproxDBSCAN
from repro.datasets import ReplayStream, make_session_stream
from repro.metricspace import EditDistanceMetric, MetricDataset

from conftest import same_cluster_pairs


def random_instance(seed, n_extra_outliers=5):
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(0.0, 0.3, size=(60, 2)),
        rng.normal([6.0, 0.0], 0.35, size=(60, 2)),
        rng.uniform(-15.0, 15.0, size=(n_extra_outliers, 2)),
    ]
    pts = np.vstack(parts)
    rng.shuffle(pts)
    return MetricDataset(pts)


def check_sandwich(ds, eps, min_pts, rho, labels):
    exact_lo = OriginalDBSCAN(eps, min_pts).fit(ds)
    exact_hi = OriginalDBSCAN((1.0 + rho) * eps, min_pts).fit(ds)
    cores = np.flatnonzero(exact_lo.core_mask)
    lo = same_cluster_pairs(exact_lo.labels, cores)
    mid = same_cluster_pairs(labels, cores)
    hi = same_cluster_pairs(exact_hi.labels, cores)
    assert lo <= mid <= hi
    assert np.all(np.asarray(labels)[cores] >= 0)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("rho", [0.5, 1.0, 2.0])
    def test_sandwich(self, seed, rho):
        ds = random_instance(seed)
        eps, min_pts = 0.6, 5
        result = StreamingApproxDBSCAN(eps, min_pts, rho=rho).fit(ds)
        check_sandwich(ds, eps, min_pts, rho, result.labels)

    def test_two_blobs(self, two_blobs):
        ds, _ = two_blobs
        result = StreamingApproxDBSCAN(1.0, 5, rho=0.5).fit(ds)
        assert result.n_clusters == 2
        assert result.labels[-1] == -1

    def test_arrival_order_independent_of_validity(self):
        """Different stream orders may give different (valid) approximate
        clusterings; both must satisfy the sandwich."""
        ds = random_instance(10)
        pts = np.asarray(ds.points)
        reversed_ds = MetricDataset(pts[::-1].copy())
        for data in (ds, reversed_ds):
            result = StreamingApproxDBSCAN(0.6, 5, rho=0.5).fit(data)
            check_sandwich(data, 0.6, 5, 0.5, result.labels)

    def test_text_stream(self, text_dataset):
        ds, strings = text_dataset
        solver = StreamingApproxDBSCAN(
            2.0, 3, rho=0.5, metric=EditDistanceMetric()
        )
        result = solver.fit(ds)
        check_sandwich(ds, 2.0, 3, 0.5, result.labels)


class TestStreamingProtocol:
    def test_exactly_three_passes(self):
        ds = random_instance(20)
        stream = ReplayStream(np.asarray(ds.points))
        solver = StreamingApproxDBSCAN(0.6, 5, rho=0.5)
        result = solver.fit_stream(stream, n_hint=ds.n)
        assert stream.passes_started == 3
        assert result.labels.shape[0] == ds.n

    def test_memory_stats_reported(self):
        ds = random_instance(21)
        result = StreamingApproxDBSCAN(0.6, 5, rho=0.5).fit(ds)
        stats = result.stats
        assert stats["memory_points"] == stats["n_centers"] + stats["watch_size"]
        assert 0.0 < stats["memory_ratio"] <= 1.0
        assert stats["n_passes"] == 3

    def test_memory_sublinear_in_n(self):
        """Theorem 4: with a fixed domain, |E|+|M| does not grow with n."""
        rng = np.random.default_rng(3)

        def build(n):
            pts = np.vstack([
                rng.normal(0.0, 0.3, size=(n // 2, 2)),
                rng.normal([6.0, 0.0], 0.3, size=(n - n // 2, 2)),
            ])
            return MetricDataset(pts)

        small = StreamingApproxDBSCAN(0.6, 5, rho=0.5).fit(build(200))
        large = StreamingApproxDBSCAN(0.6, 5, rho=0.5).fit(build(2000))
        assert large.stats["memory_points"] <= 3 * small.stats["memory_points"]
        assert large.stats["memory_ratio"] < small.stats["memory_ratio"]

    def test_watch_list_bounded_by_min_pts_per_center(self):
        """|M| <= MinPts * |E| (the Theorem 4 memory argument)."""
        ds = random_instance(22)
        min_pts = 5
        result = StreamingApproxDBSCAN(0.6, min_pts, rho=0.5).fit(ds)
        assert result.stats["watch_size"] <= min_pts * result.stats["n_centers"]

    def test_mismatched_metric_kind_rejected(self):
        ds = MetricDataset(["ab", "cd"], EditDistanceMetric())
        solver = StreamingApproxDBSCAN(1.0, 2, rho=0.5)  # Euclidean default
        with pytest.raises(ValueError):
            solver.fit(ds)


class TestDriftStream:
    def test_session_stream_clusters_found(self):
        points, labels = make_session_stream(
            n=1200, dim=4, n_clusters=3, drift=1.0, seed=0
        )
        ds = MetricDataset(points)
        result = StreamingApproxDBSCAN(2.5, 8, rho=0.5).fit(ds)
        assert result.n_clusters >= 2
        # Streaming memory must be a small fraction of the stream.
        assert result.stats["memory_ratio"] < 0.5
