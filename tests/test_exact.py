"""Tests for the exact metric DBSCAN solver (Section 3).

The ground truth is :class:`OriginalDBSCAN` (brute force): the two must
agree on the core-point set, the partition of the core points, and the
noise set, on every instance — including text data under edit distance.
"""

import numpy as np
import pytest

from repro.baselines import OriginalDBSCAN
from repro.core import MetricDBSCAN, metric_dbscan
from repro.metricspace import EditDistanceMetric, MetricDataset

from conftest import core_partition


def random_instance(seed, with_outliers=True):
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(0.0, 0.3, size=(int(rng.integers(15, 60)), 2)),
        rng.normal([5.0, 1.0], 0.4, size=(int(rng.integers(15, 60)), 2)),
        rng.normal([-3.0, 4.0], 0.25, size=(int(rng.integers(10, 40)), 2)),
    ]
    if with_outliers:
        parts.append(rng.uniform(-12.0, 12.0, size=(int(rng.integers(0, 12)), 2)))
    return MetricDataset(np.vstack(parts))


def assert_equivalent(result_a, result_b):
    assert np.array_equal(result_a.core_mask, result_b.core_mask)
    assert core_partition(result_a.labels, result_a.core_mask) == core_partition(
        result_b.labels, result_b.core_mask
    )
    assert np.array_equal(result_a.labels == -1, result_b.labels == -1)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_original_dbscan(self, seed):
        ds = random_instance(seed)
        rng = np.random.default_rng(seed + 1000)
        eps = float(rng.uniform(0.3, 1.0))
        min_pts = int(rng.integers(3, 9))
        ours = MetricDBSCAN(eps, min_pts).fit(ds)
        ref = OriginalDBSCAN(eps, min_pts).fit(ds)
        assert_equivalent(ours, ref)

    def test_min_pts_one_everything_core(self):
        ds = random_instance(100)
        ours = MetricDBSCAN(0.5, 1).fit(ds)
        assert bool(np.all(ours.core_mask))
        assert ours.n_noise == 0

    def test_huge_min_pts_everything_noise(self):
        ds = random_instance(101)
        ours = MetricDBSCAN(0.2, ds.n + 1).fit(ds)
        assert ours.n_clusters == 0
        assert ours.n_noise == ds.n

    def test_huge_eps_single_cluster(self):
        ds = random_instance(102)
        ours = MetricDBSCAN(1e6, 3).fit(ds)
        assert ours.n_clusters == 1
        assert ours.n_noise == 0

    def test_duplicate_points(self):
        pts = np.vstack([np.zeros((10, 2)), np.full((10, 2), 5.0)])
        ds = MetricDataset(pts)
        ours = MetricDBSCAN(0.5, 4).fit(ds)
        ref = OriginalDBSCAN(0.5, 4).fit(ds)
        assert_equivalent(ours, ref)
        assert ours.n_clusters == 2

    def test_text_data(self, text_dataset):
        ds, _ = text_dataset
        ours = MetricDBSCAN(2.0, 3).fit(ds)
        ref = OriginalDBSCAN(2.0, 3).fit(ds)
        assert_equivalent(ours, ref)
        assert ours.n_clusters == 2
        assert ours.labels[-1] == -1  # the long random string is noise

    def test_small_text_instance_edit_metric(self):
        strings = ["aa", "ab", "ba", "zzzz", "zzzy", "qqqqqqqq"]
        ds = MetricDataset(strings, EditDistanceMetric())
        ours = MetricDBSCAN(1.0, 2).fit(ds)
        ref = OriginalDBSCAN(1.0, 2).fit(ds)
        assert_equivalent(ours, ref)


class TestConfiguration:
    def test_r_bar_variants_equivalent(self):
        """Remark 5: any r̄ <= ε/2 yields the same exact clustering."""
        ds = random_instance(200)
        base = MetricDBSCAN(0.6, 5).fit(ds)
        for r_bar in (0.3, 0.2, 0.1, 0.05):
            other = MetricDBSCAN(0.6, 5, r_bar=r_bar).fit(ds)
            assert_equivalent(base, other)

    def test_r_bar_too_large_rejected(self):
        with pytest.raises(ValueError):
            MetricDBSCAN(0.6, 5, r_bar=0.5)

    def test_brute_bcp_equivalent(self):
        ds = random_instance(201)
        a = MetricDBSCAN(0.6, 5, use_cover_tree=True).fit(ds)
        b = MetricDBSCAN(0.6, 5, use_cover_tree=False).fit(ds)
        assert_equivalent(a, b)

    def test_dense_shortcut_off_equivalent(self):
        ds = random_instance(202)
        a = MetricDBSCAN(0.6, 5, dense_shortcut=True).fit(ds)
        b = MetricDBSCAN(0.6, 5, dense_shortcut=False).fit(ds)
        assert_equivalent(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MetricDBSCAN(-1.0, 5)
        with pytest.raises(ValueError):
            MetricDBSCAN(1.0, 0)

    def test_convenience_function(self, tiny_line):
        result = metric_dbscan(tiny_line, 0.5, 3)
        assert result.n_clusters == 2


class TestPrecomputedNet:
    def test_reuse_across_eps(self):
        """Remark 5: one net with r̄ = ε0/2 serves every ε >= ε0."""
        ds = random_instance(300)
        eps0 = 0.3
        net = MetricDBSCAN.precompute(ds, r_bar=eps0 / 2.0)
        for eps in (0.3, 0.5, 0.8):
            reused = MetricDBSCAN(eps, 5).fit(ds, net=net)
            fresh = MetricDBSCAN(eps, 5).fit(ds)
            assert_equivalent(reused, fresh)

    def test_reuse_across_min_pts(self):
        ds = random_instance(301)
        net = MetricDBSCAN.precompute(ds, r_bar=0.25)
        for min_pts in (3, 5, 10):
            reused = MetricDBSCAN(0.5, min_pts).fit(ds, net=net)
            fresh = MetricDBSCAN(0.5, min_pts).fit(ds)
            assert_equivalent(reused, fresh)

    def test_net_with_too_large_r_bar_rejected(self):
        ds = random_instance(302)
        net = MetricDBSCAN.precompute(ds, r_bar=1.0)
        with pytest.raises(ValueError):
            MetricDBSCAN(0.5, 5).fit(ds, net=net)

    def test_net_from_other_dataset_rejected(self):
        ds = random_instance(303)
        other = MetricDataset(np.zeros((3, 2)))
        net = MetricDBSCAN.precompute(other, r_bar=0.1)
        with pytest.raises(ValueError):
            MetricDBSCAN(0.5, 5).fit(ds, net=net)

    def test_reused_net_skips_gonzalez_time(self):
        ds = random_instance(304)
        net = MetricDBSCAN.precompute(ds, r_bar=0.25)
        result = MetricDBSCAN(0.5, 5).fit(ds, net=net)
        assert result.timings.phases["gonzalez"] == 0.0


class TestResultMetadata:
    def test_stats_and_timings_present(self, two_blobs):
        ds, _ = two_blobs
        result = MetricDBSCAN(1.0, 5).fit(ds)
        assert result.stats["algorithm"] == "our_exact"
        assert result.stats["n_centers"] >= 2
        for phase in ("gonzalez", "label_cores", "merge", "label_borders"):
            assert phase in result.timings.phases

    def test_two_blobs_recovered(self, two_blobs):
        ds, truth = two_blobs
        result = MetricDBSCAN(1.0, 5).fit(ds)
        assert result.n_clusters == 2
        assert result.labels[-1] == -1
