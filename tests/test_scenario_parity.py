"""Scenario-parity suite: every solver mode agrees on clean scenarios.

First leg of the ROADMAP's scenario-matrix item: exact, approx, and
their sharded counterparts must tell the same story on well-separated
blobs and moons under **every** ``REPRO_DEFAULT_INDEX`` setting —
exact-vs-sharded-exact as a strict equivalence (the algorithm
guarantees the same partition up to cluster-id relabeling), everything
else as an ARI band (approx labelings are net-dependent and only
ρ-approximation is guaranteed).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import assert_labels_equivalent
from repro.core.approx import ApproxMetricDBSCAN
from repro.core.exact import MetricDBSCAN
from repro.datasets import make_blobs, make_moons
from repro.evaluation import adjusted_rand_index
from repro.metricspace import MetricDataset

BACKENDS = ["auto", "brute", "grid", "covertree"]

#: Minimum pairwise agreement between any two solver modes on the
#: clean scenarios below.
ARI_FLOOR = 0.99


def _scenarios():
    blobs, _ = make_blobs(
        n=620, n_clusters=3, dim=2, std=0.35, spread=9.0,
        outlier_fraction=0.04, seed=21,
    )
    moons, _ = make_moons(n=620, noise=0.05, outlier_fraction=0.03, seed=8)
    return [("blobs", blobs, 0.7, 6), ("moons", moons, 0.14, 6)]


SCENARIOS = _scenarios()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "name,pts,eps,min_pts", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
class TestScenarioParity:
    def _runs(self, pts, eps, min_pts):
        ds = MetricDataset(pts)
        return {
            "exact": MetricDBSCAN(eps, min_pts, workers=1).fit(ds),
            "approx": ApproxMetricDBSCAN(eps, min_pts, workers=1).fit(ds),
            "sharded-exact": MetricDBSCAN(
                eps, min_pts, workers=1, shards=3
            ).fit(ds),
            "sharded-approx": ApproxMetricDBSCAN(
                eps, min_pts, workers=1, shards=3
            ).fit(ds),
        }

    def test_all_modes_agree(
        self, monkeypatch, backend, name, pts, eps, min_pts
    ):
        monkeypatch.setenv("REPRO_DEFAULT_INDEX", backend)
        runs = self._runs(pts, eps, min_pts)

        # strict: sharding cannot change the exact clustering
        assert_labels_equivalent(
            runs["exact"].labels, runs["sharded-exact"].labels
        )
        assert np.array_equal(
            runs["exact"].core_mask, runs["sharded-exact"].core_mask
        )

        names = list(runs)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                ari = adjusted_rand_index(runs[a].labels, runs[b].labels)
                assert ari >= ARI_FLOOR, (
                    f"{a} vs {b} on {name}/{backend}: ARI {ari:.4f} "
                    f"< {ARI_FLOOR}"
                )

    def test_sharded_modes_report_plan(
        self, monkeypatch, backend, name, pts, eps, min_pts
    ):
        monkeypatch.setenv("REPRO_DEFAULT_INDEX", backend)
        result = MetricDBSCAN(eps, min_pts, workers=1, shards=3).fit(
            MetricDataset(pts)
        )
        assert result.stats["n_shards"] == 3
        assert result.stats["parallel_mode"] == "serial"
