"""Tests for the multi-cluster border membership extension
(Definition 1's footnote: a border point may belong to several
clusters)."""

import numpy as np
import pytest

from repro import MetricDBSCAN, MetricDataset


@pytest.fixture
def shared_border_instance():
    """Two tight 1-D clusters with one border point reachable from core
    points of *both* (but itself not core), so Definition 1 assigns it
    to two clusters."""
    cluster_a = np.linspace(0.0, 0.1, 6)
    cluster_b = np.linspace(2.35, 2.45, 6)
    border = np.array([1.25])
    pts = np.concatenate([cluster_a, border, cluster_b]).reshape(-1, 1)
    return MetricDataset(pts), 6  # border point index

def test_border_belongs_to_both_clusters(shared_border_instance):
    ds, border_idx = shared_border_instance
    result = MetricDBSCAN(
        1.15, 6, collect_border_memberships=True
    ).fit(ds)
    assert result.n_clusters == 2
    assert not result.core_mask[border_idx]
    assert result.labels[border_idx] >= 0  # border, not noise
    memberships = result.stats["border_memberships"]
    assert memberships[border_idx] == [0, 1]
    # The labels array keeps the nearest core's cluster.
    assert result.labels[border_idx] in memberships[border_idx]


def test_memberships_only_for_borders(shared_border_instance):
    ds, border_idx = shared_border_instance
    result = MetricDBSCAN(
        1.15, 6, collect_border_memberships=True
    ).fit(ds)
    assert set(result.stats["border_memberships"]) == {border_idx}


def test_disabled_by_default(shared_border_instance):
    ds, _ = shared_border_instance
    result = MetricDBSCAN(1.15, 6).fit(ds)
    assert "border_memberships" not in result.stats


def test_single_cluster_border(two_blobs):
    """Ordinary borders report exactly one cluster."""
    ds, _ = two_blobs
    result = MetricDBSCAN(1.0, 20, collect_border_memberships=True).fit(ds)
    for point, clusters in result.stats["border_memberships"].items():
        assert len(clusters) >= 1
        assert result.labels[point] in clusters
