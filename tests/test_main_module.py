"""End-to-end check that ``python -m repro`` works as a subprocess."""

import subprocess
import sys


def test_python_dash_m_repro_datasets():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "datasets"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "moons" in proc.stdout


def test_python_dash_m_repro_cluster():
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "cluster",
            "--dataset", "moons", "--algo", "approx",
            "--eps", "0.12", "--size", "200",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0
    assert "ARI" in proc.stdout
