"""End-to-end check that ``python -m repro`` works as a subprocess."""

import os
import subprocess
import sys
from pathlib import Path

import repro


def _env_with_repro_on_path():
    """Subprocess env whose PYTHONPATH can resolve the package, whether
    or not the parent was launched with PYTHONPATH=src set."""
    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    parts = [pkg_root] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def test_python_dash_m_repro_datasets():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "datasets"],
        capture_output=True,
        text=True,
        timeout=120,
        env=_env_with_repro_on_path(),
    )
    assert proc.returncode == 0
    assert "moons" in proc.stdout


def test_python_dash_m_repro_cluster():
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "cluster",
            "--dataset", "moons", "--algo", "approx",
            "--eps", "0.12", "--size", "200",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env=_env_with_repro_on_path(),
    )
    assert proc.returncode == 0
    assert "ARI" in proc.stdout
