"""Input-dtype boundary coercion: float32/int data must cluster
bit-identically to its float64 cast.

The engine coerces vector payloads to float64 exactly once, at the
dataset/store boundary (``MetricDataset.__init__`` / ``PayloadStore``);
every downstream kernel — including the float32 GEMM tier of the
certified cascade — then starts from the same float64 operands.  If a
float32 input ever leaked straight into the cascade's low tier it
would be rounded twice and these tests would diverge.
"""

import numpy as np
import pytest

from repro.core import StreamingApproxDBSCAN, approx_metric_dbscan, metric_dbscan
from repro.metricspace import EuclideanMetric, MetricDataset

BACKENDS = ["auto", "brute", "grid", "covertree"]


def blobs(dtype, seed=11, n=240):
    rng = np.random.default_rng(seed)
    pts = np.vstack([
        rng.normal(0.0, 0.4, size=(n // 3, 3)),
        rng.normal(5.0, 0.4, size=(n // 3, 3)),
        rng.normal((0.0, 7.0, 0.0), 0.4, size=(n - 2 * (n // 3), 3)),
    ])
    return pts.astype(dtype)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", [np.float32, np.int64])
def test_exact_labels_match_float64_cast(monkeypatch, backend, dtype):
    monkeypatch.setenv("REPRO_DEFAULT_INDEX", backend)
    raw = blobs(dtype)
    ref = metric_dbscan(MetricDataset(raw.astype(np.float64)), 1.0, 5)
    got = metric_dbscan(MetricDataset(raw), 1.0, 5)
    np.testing.assert_array_equal(ref.labels, got.labels)
    np.testing.assert_array_equal(ref.core_mask, got.core_mask)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", [np.float32, np.int64])
def test_approx_labels_match_float64_cast(monkeypatch, backend, dtype):
    monkeypatch.setenv("REPRO_DEFAULT_INDEX", backend)
    raw = blobs(dtype)
    ref = approx_metric_dbscan(
        MetricDataset(raw.astype(np.float64)), 1.0, 5, rho=0.5
    )
    got = approx_metric_dbscan(MetricDataset(raw), 1.0, 5, rho=0.5)
    np.testing.assert_array_equal(ref.labels, got.labels)


def test_streaming_payloads_match_float64_cast():
    """Stream payloads enter through ``PayloadStore.append`` — the
    other coercion boundary — so float32 arrivals must reproduce the
    float64 run exactly."""
    raw = blobs(np.float32, seed=12, n=180)
    solver = StreamingApproxDBSCAN(1.0, 5, rho=0.5)
    ref = solver.fit(MetricDataset(raw.astype(np.float64), EuclideanMetric()))
    got = solver.fit(MetricDataset(raw, EuclideanMetric()))
    np.testing.assert_array_equal(ref.labels, got.labels)
