"""Tests for the dynamic-index layer and its consumers.

The load-bearing contract is *incremental equivalence*: an index grown
via ``insert_batch`` must answer ``range_query``/``knn`` exactly as one
built fresh over the union, for every backend — the Gonzalez loop, the
streaming passes and the windowed maintenance all rely on it.  On top
sit the rebuild-fallback wrapper, the auto-policy grid probe, the grid
kNN ring-delta cache, the bulk cover-tree build, and the solver-level
regressions: Algorithm 1 materializes no dense ``|E|²`` matrix on any
path, and streaming/windowed labels with ``index=`` match the
dense-scan path bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamingApproxDBSCAN
from repro.core.gonzalez import radius_guided_gonzalez
from repro.core.summary import build_summary
from repro.core.windowed import WindowedApproxDBSCAN
from repro.covertree.tree import BULK_BUILD_MIN, CoverTree
from repro.datasets import make_blobs
from repro.index import (
    BruteForceIndex,
    CoverTreeIndex,
    DynamicIndexWrapper,
    GridIndex,
    build_dynamic_index,
    build_index,
)
from repro.index.registry import DEFAULT_INDEX_ENV
from repro.metricspace import EditDistanceMetric, MetricDataset
from repro.metricspace.dataset import GrowingMetricDataset

BACKENDS = ("brute", "grid", "covertree")


def blob_dataset(n=600, dim=8, seed=0):
    pts, _ = make_blobs(
        n=n, n_clusters=4, dim=dim, std=0.7, spread=8.0,
        outlier_fraction=0.1, seed=seed,
    )
    return MetricDataset(pts)


def assert_query_equal(got, want, atol=1e-9):
    for (g_ids, g_d), (w_ids, w_d) in zip(got, want):
        np.testing.assert_array_equal(g_ids, w_ids)
        if g_d is not None and w_d is not None:
            np.testing.assert_allclose(g_d, w_d, atol=atol)


class TestIncrementalEquivalence:
    """Grown == fresh, per backend, including adversarial insert order."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grown_matches_fresh(self, backend):
        ds = blob_dataset()
        grown = build_index(backend, ds, indices=np.arange(200), radius_hint=2.0)
        # Reverse-order inserts break any position==id monotonicity.
        grown.insert_batch(np.arange(ds.n - 1, 199, -1))
        fresh = build_index(backend, ds, radius_hint=2.0)
        queries = np.arange(0, ds.n, 13)
        for radius in (0.5, 2.0, 6.0):
            assert_query_equal(
                grown.range_query_batch(queries, radius),
                fresh.range_query_batch(queries, radius),
            )
        for q in range(0, ds.n, 101):
            g_ids, g_d = grown.knn(q, 9)
            w_ids, w_d = fresh.knn(q, 9)
            np.testing.assert_array_equal(g_ids, w_ids)
            np.testing.assert_allclose(g_d, w_d, atol=1e-9)

    @pytest.mark.parametrize("backend", ("brute", "covertree"))
    def test_grown_matches_fresh_edit_distance(self, backend):
        rng = np.random.default_rng(3)
        strings = [
            "".join(rng.choice(list("abcd"), size=rng.integers(3, 9)))
            for _ in range(80)
        ]
        ds = MetricDataset(strings, EditDistanceMetric())
        grown = build_index(backend, ds, indices=np.arange(40))
        grown.insert_batch(np.arange(40, 80))
        fresh = build_index(backend, ds)
        assert_query_equal(
            grown.range_query_batch(np.arange(80), 2.0),
            fresh.range_query_batch(np.arange(80), 2.0),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_by_one_inserts(self, backend):
        ds = blob_dataset(n=120)
        grown = build_index(backend, ds, indices=[0], radius_hint=1.0)
        for i in range(1, ds.n):
            grown.insert(i)
        fresh = build_index(backend, ds, radius_hint=1.0)
        assert_query_equal(
            grown.range_query_batch(np.arange(ds.n), 1.5),
            fresh.range_query_batch(np.arange(ds.n), 1.5),
        )

    def test_insert_validation(self):
        ds = blob_dataset(n=60)
        idx = build_index("brute", ds, indices=np.arange(30))
        with pytest.raises(ValueError, match="duplicate"):
            idx.insert_batch([31, 31])
        with pytest.raises(ValueError, match="out-of-range"):
            idx.insert_batch([999])
        with pytest.raises(ValueError, match="already-stored"):
            idx.insert_batch([5])
        with pytest.raises(RuntimeError):
            BruteForceIndex().insert(0)  # unbuilt
        idx.insert_batch([])  # no-op is fine

    def test_payload_queries_match_index_queries(self):
        ds = blob_dataset(n=200)
        pts = np.asarray(ds.points)
        for backend in BACKENDS:
            idx = build_index(backend, ds, radius_hint=2.0)
            by_index = idx.range_query_batch(np.arange(0, 200, 17), 2.0)
            by_payload = idx.range_query_points(
                [pts[i] for i in range(0, 200, 17)], 2.0
            )
            assert_query_equal(by_payload, by_index, atol=1e-6)


class TestDynamicWrapper:
    """Rebuild-fallback for backends without native insert."""

    class _FrozenGrid(GridIndex):
        """A grid stripped of its native insert (test double)."""

        supports_insert = False

        def _insert(self, new):  # pragma: no cover - must never run
            raise AssertionError("wrapper must not call _insert")

    def test_wrapper_rebuilds_lazily(self):
        ds = blob_dataset(n=150)
        inner = self._FrozenGrid()
        wrapped = DynamicIndexWrapper(inner).build(
            ds, indices=np.arange(100), radius_hint=1.5
        )
        assert wrapped.supports_insert
        assert wrapped.name == "grid"  # sees through to the inner backend
        wrapped.insert_batch(np.arange(100, 150))
        fresh = GridIndex().build(ds, radius_hint=1.5)
        assert_query_equal(
            wrapped.range_query_batch(np.arange(150), 1.5),
            fresh.range_query_batch(np.arange(150), 1.5),
        )

    def test_wrapper_counters_accumulate_across_rebuilds(self):
        ds = blob_dataset(n=120)
        wrapped = DynamicIndexWrapper(self._FrozenGrid()).build(
            ds, indices=np.arange(60), radius_hint=1.5
        )
        wrapped.range_query_batch(np.arange(10), 1.5)
        wrapped.insert_batch(np.arange(60, 120))
        wrapped.range_query_batch(np.arange(10), 1.5)
        counts = wrapped.counters()
        assert counts["n_range_queries"] == 20
        assert counts["n_candidates"] > 0

    def test_unwrapped_insert_raises(self):
        ds = blob_dataset(n=40)
        idx = self._FrozenGrid().build(ds, indices=np.arange(30), radius_hint=1.0)
        with pytest.raises(NotImplementedError, match="DynamicIndexWrapper"):
            idx.insert(35)

    def test_build_dynamic_index_wraps_only_when_needed(self):
        ds = blob_dataset(n=50)
        native = build_dynamic_index("grid", ds, radius_hint=1.0)
        assert isinstance(native, GridIndex)
        wrapped = build_dynamic_index(self._FrozenGrid(), ds, radius_hint=1.0)
        assert isinstance(wrapped, DynamicIndexWrapper)
        wrapped.insert_batch([])  # built and insertable

    def test_double_wrap_rejected(self):
        with pytest.raises(TypeError):
            DynamicIndexWrapper(DynamicIndexWrapper(GridIndex()))

    def test_spawn_leaves_original_counters_intact(self):
        ds = blob_dataset(n=80)
        wrapped = DynamicIndexWrapper(self._FrozenGrid()).build(
            ds, radius_hint=1.5
        )
        wrapped.range_query_batch(np.arange(10), 1.5)
        before = wrapped.counters()
        assert before["n_range_queries"] == 10
        sibling = wrapped.spawn()
        assert wrapped.counters() == before
        assert sibling.dataset is None
        assert sibling.counters()["n_range_queries"] == 0


class TestGridKnnRingCache:
    def test_far_query_evaluates_each_candidate_once(self):
        # Near shell at ~2.9 with cell width 1: gathered at reach 2 but
        # not certified (2.9 > 2), so the pre-cache code re-evaluated
        # them at reach 4.  The delta cache must evaluate each stored
        # point at most once.
        rng = np.random.default_rng(0)
        shell = rng.normal(size=(10, 3))
        radii = 2.8 + 0.02 * np.arange(10)  # distinct — no float ties
        shell = radii[:, None] * shell / np.linalg.norm(
            shell, axis=1, keepdims=True
        )
        far = 40.0 + rng.uniform(-1, 1, size=(50, 3))
        pts = np.vstack([[[0.0, 0.0, 0.0]], shell, far])
        ds = MetricDataset(pts)
        idx = GridIndex(cell_width=1.0).build(ds, radius_hint=1.0)
        ref = build_index("brute", ds)
        ids, dists = idx.knn(0, 8)
        w_ids, w_d = ref.knn(0, 8)
        np.testing.assert_array_equal(ids, w_ids)
        np.testing.assert_allclose(dists, w_d, atol=1e-9)
        # 11 near points (self + shell) answer the query; the far mass
        # is never gathered, and nothing is evaluated twice.
        assert idx.n_candidates <= ds.n
        assert idx.n_candidates == 11

    def test_trickling_rings_stay_linear(self):
        # Points spread along a line force several doublings; total
        # evaluations stay <= n_stored (each point evaluated once).
        pts = np.array([[float(2**k), 0.0] for k in range(12)] + [[0.0, 0.0]])
        ds = MetricDataset(pts)
        idx = GridIndex(cell_width=1.0).build(ds)
        ref = build_index("brute", ds)
        ids, dists = idx.knn(12, 5)
        w_ids, w_d = ref.knn(12, 5)
        np.testing.assert_array_equal(ids, w_ids)
        assert idx.n_candidates <= ds.n


class TestAutoPolicyProbe:
    def test_isotropic_high_d_falls_back_to_brute(self):
        rng = np.random.default_rng(1)
        ds = MetricDataset(rng.normal(size=(3000, 32)))
        idx = build_index("auto", ds, radius_hint=6.5)
        assert isinstance(idx, BruteForceIndex)
        # The probe leaves a fresh instrumentation scope.
        assert idx.counters() == {"n_range_queries": 0, "n_candidates": 0}

    def test_concentrated_data_keeps_grid(self):
        pts, _ = make_blobs(
            n=3000, n_clusters=8, dim=16, std=0.5, spread=30.0,
            outlier_fraction=0.05, seed=0,
        )
        idx = build_index("auto", MetricDataset(pts), radius_hint=2.5)
        assert isinstance(idx, GridIndex)

    def test_explicit_grid_is_never_probed_away(self):
        rng = np.random.default_rng(2)
        ds = MetricDataset(rng.normal(size=(3000, 32)))
        assert isinstance(
            build_index("grid", ds, radius_hint=6.5), GridIndex
        )

    def test_env_forced_grid_is_never_probed_away(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_INDEX_ENV, "grid")
        rng = np.random.default_rng(2)
        ds = MetricDataset(rng.normal(size=(3000, 32)))
        assert isinstance(build_index(None, ds, radius_hint=6.5), GridIndex)


class TestBulkCoverTree:
    def test_bulk_queries_match_classic(self):
        rng = np.random.default_rng(4)
        ds = MetricDataset(rng.normal(size=(500, 4)))
        classic = CoverTree(ds, bulk=False)
        bulk = CoverTree(ds, bulk=True)
        for radius in (0.5, 1.5, 4.0):
            q = rng.normal(size=4)
            got = sorted(i for i, _ in bulk.range_query(q, radius))
            want = sorted(i for i, _ in classic.range_query(q, radius))
            assert got == want
        for _ in range(10):
            q = rng.normal(size=4)
            assert bulk.nearest(q)[1] == pytest.approx(
                classic.nearest(q)[1], abs=1e-12
            )
            got_k = [d for _, d in bulk.knn(q, 7)]
            want_k = [d for _, d in classic.knn(q, 7)]
            np.testing.assert_allclose(got_k, want_k, atol=1e-12)

    def test_bulk_handles_duplicates(self):
        pts = np.array([[0.0, 0.0]] * 3 + [[5.0, 5.0]] * 2 + [[9.0, 0.0]])
        tree = CoverTree(MetricDataset(pts), bulk=True)
        assert tree.size == 6
        assert sorted(tree.all_indices()) == list(range(6))
        hits = sorted(i for i, _ in tree.range_query(np.array([0.0, 0.0]), 0.1))
        assert hits == [0, 1, 2]

    def test_bulk_build_is_cheaper_at_scale(self):
        pts, _ = make_blobs(
            n=3000, n_clusters=6, dim=8, std=0.5, spread=20.0,
            outlier_fraction=0.05, seed=5,
        )
        ds = MetricDataset(pts)
        classic = CoverTree(ds, bulk=False)
        bulk = CoverTree(ds, bulk=True)
        assert bulk.n_distance_evals < classic.n_distance_evals / 2

    def test_insert_after_bulk_build(self):
        rng = np.random.default_rng(6)
        ds = MetricDataset(rng.normal(size=(300, 3)))
        tree = CoverTree(ds, indices=range(250), bulk=True)
        for i in range(250, 300):
            tree.insert(i)
        q = rng.normal(size=3)
        want = sorted(
            np.flatnonzero(ds.distances_point(q) <= 2.0).tolist()
        )
        assert sorted(i for i, _ in tree.range_query(q, 2.0)) == want

    def test_auto_policy_threshold(self):
        assert BULK_BUILD_MIN >= 2  # documented knob exists
        # Index adapter at scale uses bulk (far fewer evals than the
        # classic build's known cost profile is hard to pin exactly;
        # instead pin that bulk kicks in above the threshold).
        rng = np.random.default_rng(7)
        small = MetricDataset(rng.normal(size=(64, 3)))
        CoverTreeIndex().build(small)  # classic path, must just work


class TestGonzalezIndexBacked:
    def test_no_dense_matrix_materialized(self):
        ds = blob_dataset(n=500)
        net = radius_guided_gonzalez(ds, 0.8)
        assert net.index is not None
        assert net.index.n_stored == net.n_centers
        assert not net.has_dense_center_matrix
        # Construction instrumentation present and sane.
        assert net.counters["net_range_queries"] > 0
        assert net.counters["peak_center_matrix_bytes"] > 0

    def test_auto_policy_resolves_against_dataset_size(self):
        # The in-loop index starts from one center; the auto policy
        # must not lock into brute because of that initial size when
        # the dataset (the worst-case |E|) is large.
        rng = np.random.default_rng(9)
        pts = rng.uniform(0.0, 200.0, size=(3000, 2))
        net = radius_guided_gonzalez(MetricDataset(pts), 1.0, index="auto")
        assert net.n_centers > 2048
        assert net.index.name == "grid"

    def test_auto_policy_probes_grown_grid_on_isotropic_data(self):
        # Isotropic high-d data degenerates the ≤3-dim lattice; the
        # grown-index resolution must run the same probe-and-fall-back
        # the static build_index path does.
        rng = np.random.default_rng(10)
        pts = rng.normal(size=(3000, 32))
        net = radius_guided_gonzalez(MetricDataset(pts), 4.0, index="auto")
        assert net.index.name == "brute"

    def test_small_stored_grid_projects_by_dataset_variance(self):
        # One stored point has zero variance everywhere; the lattice
        # dims must come from the dataset distribution instead of
        # argsort tie-breaking on zeros.
        rng = np.random.default_rng(11)
        pts = np.zeros((500, 6))
        pts[:, 4] = rng.normal(scale=10.0, size=500)  # all spread in dim 4
        pts[:, 1] = rng.normal(scale=5.0, size=500)
        ds = MetricDataset(pts)
        idx = GridIndex(max_grid_dims=2).build(ds, indices=[0], radius_hint=1.0)
        np.testing.assert_array_equal(idx._dims, [1, 4])

    def test_netgraph_reuses_carried_index_for_default_spec(self):
        # |E| <= AUTO_BRUTE_MAX resolves 'brute', but building anything
        # would be a second build — the carried index must be reused
        # and the merge graph must not cost ~|E|² fresh evaluations.
        from repro.index import net_neighbor_sets

        rng = np.random.default_rng(12)
        pts = rng.uniform(0.0, 60.0, size=(5000, 2))
        ds = MetricDataset(pts)
        net = radius_guided_gonzalez(ds, 2.0, index="auto")
        m = net.n_centers
        assert m <= 2048 and net.index.name == "grid"
        evals0 = ds.n_cross_evals
        neighbors = net_neighbor_sets(net, 2.0 * net.r_bar + 1.0, "auto")
        assert len(neighbors) == m
        assert ds.n_cross_evals - evals0 < m * m / 4
        # An explicit mismatching name still builds what was asked.
        explicit = net_neighbor_sets(net, 2.0 * net.r_bar + 1.0, "brute")
        for a, b in zip(neighbors, explicit):
            np.testing.assert_array_equal(a, b)

    def test_peak_counter_scales_with_degree_not_m_squared(self):
        # Many centers, sparse neighborhoods: the pair working set must
        # stay far below the dense matrix footprint.
        rng = np.random.default_rng(8)
        pts = rng.uniform(0.0, 400.0, size=(4000, 2))
        ds = MetricDataset(pts)
        net = radius_guided_gonzalez(ds, 1.0, eps_for_counts=2.0)
        m = net.n_centers
        assert m > 1000  # the regime the counter is about
        dense_bytes = m * m * 8
        assert net.counters["peak_center_matrix_bytes"] < dense_bytes / 10

    def test_lazy_dense_property_still_correct(self):
        ds = blob_dataset(n=200)
        net = radius_guided_gonzalez(ds, 1.0)
        m = net.n_centers
        for i in range(min(m, 6)):
            for j in range(min(m, 6)):
                assert net.center_distances[i, j] == pytest.approx(
                    ds.distance(net.centers[i], net.centers[j]), abs=1e-9
                )
        assert net.has_dense_center_matrix  # cached after access

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_neighbor_centers_match_dense_threshold(self, backend):
        ds = blob_dataset(n=400)
        net = radius_guided_gonzalez(ds, 0.7, index=backend)
        threshold = 2.0 * net.r_bar + 1.1
        via_index = net.neighbor_centers(threshold)
        dense = net.center_distances  # materializes the matrix
        rows, cols = np.nonzero(dense <= threshold)
        split = np.searchsorted(rows, np.arange(net.n_centers + 1))
        for j in range(net.n_centers):
            np.testing.assert_array_equal(
                via_index[j], cols[split[j] : split[j + 1]]
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_net_outputs_backend_independent(self, backend):
        ds = blob_dataset(n=400, seed=2)
        want = radius_guided_gonzalez(ds, 0.6, eps_for_counts=1.2, index="brute")
        got = radius_guided_gonzalez(ds, 0.6, eps_for_counts=1.2, index=backend)
        assert want.centers == got.centers
        np.testing.assert_array_equal(want.center_of, got.center_of)
        np.testing.assert_array_equal(want.ball_counts, got.ball_counts)
        np.testing.assert_allclose(
            want.dist_to_center, got.dist_to_center, atol=1e-9
        )

    def test_summary_builds_without_explicit_neighbors(self):
        ds = blob_dataset(n=300, seed=3)
        eps, min_pts, rho = 1.2, 5, 0.5
        net = radius_guided_gonzalez(ds, rho * eps / 2.0, eps_for_counts=eps)
        explicit = build_summary(
            ds, net, eps, min_pts,
            net.neighbor_centers(2.0 * net.r_bar + eps),
        )
        implicit = build_summary(ds, net, eps, min_pts)
        np.testing.assert_array_equal(explicit.members, implicit.members)
        np.testing.assert_array_equal(
            explicit.known_core_mask, implicit.known_core_mask
        )


class TestStreamingIndexed:
    @pytest.mark.parametrize("backend", BACKENDS + ("auto",))
    def test_labels_bit_identical_to_dense(self, backend):
        rng = np.random.default_rng(11)
        pts = np.vstack([
            rng.normal(0.0, 0.3, size=(80, 2)),
            rng.normal([6.0, 0.0], 0.35, size=(80, 2)),
            rng.uniform(-15.0, 15.0, size=(8, 2)),
        ])
        rng.shuffle(pts)
        ds = MetricDataset(pts)
        dense = StreamingApproxDBSCAN(0.6, 5, rho=0.5).fit(ds)
        got = StreamingApproxDBSCAN(0.6, 5, rho=0.5, index=backend).fit(
            MetricDataset(pts)
        )
        np.testing.assert_array_equal(dense.labels, got.labels)
        assert got.stats["index_backend"] in BACKENDS
        assert got.timings.counters["n_range_queries"] > 0
        # Memory accounting is index-independent.
        assert got.stats["memory_points"] == dense.stats["memory_points"]

    def test_text_stream_with_covertree(self, text_dataset):
        ds, _ = text_dataset
        dense = StreamingApproxDBSCAN(
            2.0, 3, rho=0.5, metric=EditDistanceMetric()
        ).fit(ds)
        got = StreamingApproxDBSCAN(
            2.0, 3, rho=0.5, metric=EditDistanceMetric(), index="covertree"
        ).fit(ds)
        np.testing.assert_array_equal(dense.labels, got.labels)

    def test_three_passes_preserved(self):
        from repro.datasets import ReplayStream

        rng = np.random.default_rng(12)
        pts = rng.normal(size=(150, 2))
        stream = ReplayStream(pts)
        result = StreamingApproxDBSCAN(0.6, 5, rho=0.5, index="grid").fit_stream(
            stream, n_hint=len(pts)
        )
        assert stream.passes_started == 3
        assert result.labels.shape[0] == len(pts)


class TestWindowedIndexed:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_drift_stream_matches_dense(self, backend):
        rng = np.random.default_rng(13)
        stream = [
            rng.normal([step / 50.0, 0.0], 0.2) for step in range(600)
        ]
        queries = [np.array([x, 0.0]) for x in np.linspace(-2.0, 13.0, 16)]

        def run(**kw):
            model = WindowedApproxDBSCAN(
                1.5, 5, rho=0.5, window=300, n_buckets=6, **kw
            )
            for p in stream:
                model.insert(p)
            return (
                [model.predict(q) for q in queries],
                model.n_clusters,
                model.n_live_centers,
            )

        assert run(index=backend) == run()

    def test_expiry_rebuilds_index(self):
        model = WindowedApproxDBSCAN(
            1.0, 5, rho=0.5, window=40, n_buckets=4, index="brute"
        )
        rng = np.random.default_rng(14)
        for _ in range(40):
            model.insert(rng.normal([0.0, 0.0], 0.2))
        assert model._index is not None
        stored_before = model._index.n_stored
        # Slide fully past the region: old centers must leave the index.
        for i in range(80):
            model.insert(np.array([50.0 + 3.0 * i, 0.0]))
        assert model.predict(np.array([0.0, 0.0])) == -1
        assert model._index.n_stored == model.n_live_centers
        assert model._index.n_stored <= stored_before + 80


class TestGrowingDataset:
    def test_grows_and_serves_indexes(self):
        ds = GrowingMetricDataset()
        rng = np.random.default_rng(15)
        for _ in range(10):
            ds.append(rng.normal(size=3))
        assert ds.n == 10
        idx = build_dynamic_index("brute", ds, radius_hint=1.0)
        for _ in range(5):
            idx.insert(ds.append(rng.normal(size=3)))
        assert ds.n == 15 and idx.n_stored == 15
        ids, dists = idx.range_query(0, 100.0)
        assert len(ids) == 15  # sees every appended point
        assert np.all(np.diff(ids) > 0)

    def test_payload_store_compat(self):
        ds = GrowingMetricDataset(EditDistanceMetric())
        ds.append("abc")
        ds.append("abd")
        assert ds.get(1) == "abd"
        ds.set(1, "xyz")
        assert ds.view() == ["abc", "xyz"]
