"""Tests for the sliding-window extension (the paper's future-work
item on deletion and drift)."""

import numpy as np
import pytest

from repro.core.windowed import WindowedApproxDBSCAN
from repro.metricspace import EditDistanceMetric


def feed_blob(model, rng, center, n, std=0.2, dim=2):
    for _ in range(n):
        model.insert(rng.normal(center, std, size=dim))


class TestStationary:
    def test_two_blobs_two_clusters(self):
        rng = np.random.default_rng(0)
        model = WindowedApproxDBSCAN(1.0, 5, rho=0.5, window=400)
        for _ in range(200):
            feed_blob(model, rng, [0.0, 0.0], 1)
            feed_blob(model, rng, [8.0, 0.0], 1)
        assert model.n_clusters == 2
        a = model.predict(np.array([0.0, 0.0]))
        b = model.predict(np.array([8.0, 0.0]))
        assert a >= 0 and b >= 0 and a != b

    def test_far_query_is_noise(self):
        rng = np.random.default_rng(1)
        model = WindowedApproxDBSCAN(1.0, 5, rho=0.5, window=200)
        feed_blob(model, rng, [0.0, 0.0], 100)
        assert model.predict(np.array([50.0, 50.0])) == -1

    def test_empty_model_predicts_noise(self):
        model = WindowedApproxDBSCAN(1.0, 5, rho=0.5, window=100)
        assert model.predict(np.array([0.0, 0.0])) == -1
        assert model.n_clusters == 0


class TestDeletionAndDrift:
    def test_abandoned_region_is_forgotten(self):
        """After the window slides fully past a region, queries there
        return noise — the deletion semantics."""
        rng = np.random.default_rng(2)
        model = WindowedApproxDBSCAN(1.0, 5, rho=0.5, window=200, n_buckets=4)
        feed_blob(model, rng, [0.0, 0.0], 200)
        assert model.predict(np.array([0.0, 0.0])) >= 0
        # The stream moves to a new region for > window points.
        feed_blob(model, rng, [30.0, 0.0], 300)
        assert model.predict(np.array([0.0, 0.0])) == -1
        assert model.predict(np.array([30.0, 0.0])) >= 0

    def test_drift_tracks_moving_cluster(self):
        rng = np.random.default_rng(3)
        model = WindowedApproxDBSCAN(1.5, 5, rho=0.5, window=300, n_buckets=6)
        for step in range(900):
            center = np.array([step / 50.0, 0.0])  # slow drift
            model.insert(rng.normal(center, 0.2))
        head = np.array([900 / 50.0, 0.0])
        tail = np.array([0.0, 0.0])
        assert model.predict(head) >= 0
        assert model.predict(tail) == -1

    def test_memory_bounded_under_long_stream(self):
        """Payload slots are recycled: memory tracks the window, not
        the stream length."""
        rng = np.random.default_rng(4)
        model = WindowedApproxDBSCAN(1.0, 5, rho=0.5, window=200, n_buckets=4)
        feed_blob(model, rng, [0.0, 0.0], 300)
        after_warmup = model.memory_points
        # Stream 10x more from a drifting source.
        for step in range(2000):
            model.insert(rng.normal([step / 100.0, 0.0], 0.2))
        assert model.memory_points <= after_warmup * 8
        assert model.n_seen == 2300

    def test_counts_subtracted_on_expiry(self):
        """A center whose support expired stops being core."""
        rng = np.random.default_rng(5)
        model = WindowedApproxDBSCAN(1.0, 20, rho=0.5, window=100, n_buckets=4)
        feed_blob(model, rng, [0.0, 0.0], 100)  # dense: core
        assert model.predict(np.array([0.0, 0.0])) >= 0
        # Sparse faraway trickle pushes the window past the blob.
        for i in range(120):
            model.insert(np.array([100.0 + 5.0 * i, 0.0]))
        assert model.predict(np.array([0.0, 0.0])) == -1


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedApproxDBSCAN(1.0, 5, window=0)
        with pytest.raises(ValueError):
            WindowedApproxDBSCAN(1.0, 5, window=10, n_buckets=20)
        with pytest.raises(ValueError):
            WindowedApproxDBSCAN(-1.0, 5)

    def test_non_vector_metric(self):
        model = WindowedApproxDBSCAN(
            2.0, 3, rho=0.5, window=50, metric=EditDistanceMetric()
        )
        for s in ["aaaa", "aaab", "aaba", "aabb", "aaaa", "abab"]:
            model.insert(s)
        assert model.predict("aaaa") >= 0
        assert model.predict("zzzzzzzzzz") == -1
