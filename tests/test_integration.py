"""Integration tests: end-to-end pipelines across modules, complexity
sanity checks via distance counting, and quality floors on the
registry's stand-in datasets."""

import numpy as np

from repro import (
    ApproxMetricDBSCAN,
    MetricDBSCAN,
    MetricDataset,
    StreamingApproxDBSCAN,
)
from repro.baselines import OriginalDBSCAN
from repro.datasets import load_dataset, make_moons
from repro.evaluation import adjusted_mutual_information, adjusted_rand_index


class TestQualityFloors:
    def test_moons_quality(self):
        loaded = load_dataset("moons", size=800, seed=0)
        result = MetricDBSCAN(0.12, 10).fit(loaded.dataset)
        assert adjusted_rand_index(loaded.labels, result.labels) > 0.9
        assert adjusted_mutual_information(loaded.labels, result.labels) > 0.8

    def test_high_dim_manifold_quality(self):
        loaded = load_dataset("mnist", size=600, seed=0)
        result = MetricDBSCAN(3.0, 10).fit(loaded.dataset)
        assert adjusted_rand_index(loaded.labels, result.labels) > 0.9

    def test_text_quality(self):
        loaded = load_dataset("ag_news", size=200, seed=0)
        result = ApproxMetricDBSCAN(9.0, 5, rho=0.5).fit(loaded.dataset)
        assert adjusted_rand_index(loaded.labels, result.labels) > 0.8

    def test_streaming_matches_batch_quality(self):
        loaded = load_dataset("glove25", size=800, seed=0)
        eps, min_pts = 3.0, 10
        batch = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(loaded.dataset)
        stream = StreamingApproxDBSCAN(eps, min_pts, rho=0.5).fit(loaded.dataset)
        batch_ari = adjusted_rand_index(loaded.labels, batch.labels)
        stream_ari = adjusted_rand_index(loaded.labels, stream.labels)
        assert stream_ari > batch_ari - 0.15


class TestDistanceComplexity:
    """The paper's headline: our solvers do far fewer distance
    evaluations than the quadratic brute force on clusterable data."""

    def make_clustered(self, n=600, seed=0):
        rng = np.random.default_rng(seed)
        pts = np.vstack([
            rng.normal(0.0, 0.3, size=(n // 2, 2)),
            rng.normal([8.0, 0.0], 0.3, size=(n - n // 2, 2)),
        ])
        return pts

    def count_for(self, solver_factory, pts):
        ds = MetricDataset(pts).with_counting()
        solver_factory().fit(ds)
        return ds.metric.count

    def test_exact_beats_brute_force(self):
        pts = self.make_clustered()
        ours = self.count_for(lambda: MetricDBSCAN(0.6, 10), pts)
        brute = self.count_for(lambda: OriginalDBSCAN(0.6, 10), pts)
        assert ours < brute / 3

    def test_approx_beats_exact_or_close(self):
        pts = self.make_clustered()
        approx = self.count_for(lambda: ApproxMetricDBSCAN(0.6, 10, rho=0.5), pts)
        brute = self.count_for(lambda: OriginalDBSCAN(0.6, 10), pts)
        assert approx < brute / 3

    def test_linear_scaling_in_n(self):
        """Doubling n on a fixed-domain instance should grow the distance
        count roughly linearly (not quadratically) for our solver."""
        small = self.make_clustered(n=400, seed=1)
        large = self.make_clustered(n=1600, seed=1)
        c_small = self.count_for(lambda: MetricDBSCAN(0.6, 10), small)
        c_large = self.count_for(lambda: MetricDBSCAN(0.6, 10), large)
        growth = c_large / c_small
        assert growth < 8.0  # quadratic would be ~16x

    def test_gonzalez_reuse_saves_distances(self):
        """Remark 5: re-tuning ε with a cached net must cost much less
        than a cold run."""
        pts = self.make_clustered()
        ds = MetricDataset(pts).with_counting()
        net = MetricDBSCAN.precompute(ds, r_bar=0.25)
        after_net = ds.metric.count
        MetricDBSCAN(0.6, 10).fit(ds, net=net)
        cold = MetricDataset(pts).with_counting()
        # workers=1: pool workers count their evals in their own metric
        # copies, which would understate the cold run's wrapper count.
        MetricDBSCAN(0.6, 10, workers=1).fit(cold)
        reuse_cost = ds.metric.count - after_net
        assert reuse_cost < cold.metric.count


class TestCrossAlgorithmConsistency:
    def test_all_solvers_agree_on_clean_data(self):
        """On well-separated data every DBSCAN variant finds the same
        two clusters."""
        pts, y = make_moons(n=400, noise=0.05, outlier_fraction=0.0, seed=3)
        ds = MetricDataset(pts)
        eps, min_pts = 0.15, 5
        solvers = [
            MetricDBSCAN(eps, min_pts),
            ApproxMetricDBSCAN(eps, min_pts, rho=0.5),
            StreamingApproxDBSCAN(eps, min_pts, rho=0.5),
            OriginalDBSCAN(eps, min_pts),
        ]
        for solver in solvers:
            result = solver.fit(ds)
            assert result.n_clusters == 2, type(solver).__name__
            assert adjusted_rand_index(y, result.labels) > 0.95, type(solver).__name__
