"""Tests for the vectorized streaming ingestion engine (PR 9).

Two load-bearing properties:

1. **CSR/tuple-list interchangeability** — every backend's flat CSR
   answers (``offsets``, ``ids``, ``dists``) must describe exactly the
   same rows, in the same order, with the same distances as the
   tuple-list API, for scalar and per-query radii, with and without
   distances.
2. **Epoch-batched == per-element == dense** — the epoch-batched
   indexed pass 1 is a pure execution-strategy change: labels must be
   bit-identical to both the per-element indexed reference loop and the
   dense (no-index) path, and the deterministic work counters
   (``distance_evals``, ``n_candidates``, ``n_range_queries``) must be
   *identical* between the two indexed modes — not merely close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingApproxDBSCAN
from repro.core.windowed import WindowedApproxDBSCAN
from repro.datasets import make_blobs, make_moons
from repro.index import build_index, segment_argmin
from repro.index.csr import CSRQueryResult, csr_from_parts, csr_from_rows
from repro.index.registry import DEFAULT_INDEX_ENV
from repro.metricspace import EditDistanceMetric, MetricDataset

BACKENDS = ("brute", "grid", "covertree")
#: Index specs the streaming solvers are exercised under; ``auto``
#: resolves through the registry policy, the rest force a backend.
INDEX_SETTINGS = ("auto", "brute", "grid", "covertree")

COUNTER_KEYS = ("distance_evals", "n_candidates", "n_range_queries")


def _counters(result):
    return {k: result.timings.counters.get(k, 0) for k in COUNTER_KEYS}


def _blobs():
    pts, _ = make_blobs(
        n=620, n_clusters=3, dim=2, std=0.35, spread=9.0,
        outlier_fraction=0.04, seed=21,
    )
    return pts


def _moons():
    pts, _ = make_moons(n=620, noise=0.05, outlier_fraction=0.03, seed=8)
    return pts


def _words(n=180, seed=3):
    rng = np.random.default_rng(seed)
    alphabet = list("abcdef")
    stems = ["".join(rng.choice(alphabet, size=8)) for _ in range(6)]
    out = []
    for _ in range(n):
        stem = list(stems[int(rng.integers(len(stems)))])
        for _ in range(int(rng.integers(0, 3))):
            stem[int(rng.integers(len(stem)))] = str(
                rng.choice(alphabet)
            )
        out.append("".join(stem))
    return out


# ----------------------------------------------------------------------
# CSR container + kernels


class TestCSRContainer:
    def test_round_trip_and_views(self):
        rows = [
            (np.array([3, 7]), np.array([0.5, 1.5])),
            (np.array([], dtype=np.intp), np.array([])),
            (np.array([1]), np.array([0.25])),
        ]
        csr = csr_from_rows(rows, with_distances=True)
        assert csr.n_queries == 3
        assert len(csr) == 3
        np.testing.assert_array_equal(csr.offsets, [0, 2, 2, 3])
        np.testing.assert_array_equal(csr.ids, [3, 7, 1])
        np.testing.assert_allclose(csr.dists, [0.5, 1.5, 0.25])
        np.testing.assert_array_equal(csr.counts(), [2, 0, 1])
        np.testing.assert_array_equal(csr.query_rows(), [0, 0, 2])
        got = csr.tolist()
        for (g_ids, g_d), (w_ids, w_d) in zip(got, rows):
            np.testing.assert_array_equal(g_ids, w_ids)
            np.testing.assert_allclose(g_d, w_d)

    def test_empty(self):
        csr = CSRQueryResult.empty(4, with_distances=False)
        assert csr.n_queries == 4
        assert csr.ids.size == 0
        assert csr.dists is None
        assert all(ids.size == 0 for ids, _ in csr.tolist())

    def test_offsets_validated(self):
        with pytest.raises(ValueError):
            CSRQueryResult(
                np.array([0, 2]), np.array([1, 2, 3]), None
            )

    def test_csr_from_parts_sorts_rows(self):
        # Parts arrive interleaved by block; assembly must be stable
        # per query row so within-row candidate order is preserved.
        csr = csr_from_parts(
            3,
            [np.array([2, 0]), np.array([0, 2])],
            [np.array([10, 11]), np.array([12, 13])],
            None,
        )
        np.testing.assert_array_equal(csr.counts(), [2, 0, 2])
        np.testing.assert_array_equal(csr.row(0)[0], [11, 12])
        np.testing.assert_array_equal(csr.row(2)[0], [10, 13])


class TestSegmentArgmin:
    def test_basic_and_empty_segments(self):
        values = np.array([5.0, 2.0, 9.0, 1.0, 4.0])
        offsets = np.array([0, 2, 2, 5])
        arg, minima = segment_argmin(values, offsets)
        np.testing.assert_array_equal(arg, [1, -1, 3])
        assert minima[0] == 2.0
        assert np.isinf(minima[1])
        assert minima[2] == 1.0

    def test_tie_break_is_first_occurrence(self):
        values = np.array([3.0, 1.0, 1.0, 1.0, 1.0])
        offsets = np.array([0, 3, 5])
        arg, _ = segment_argmin(values, offsets)
        np.testing.assert_array_equal(arg, [1, 3])

    def test_all_empty(self):
        arg, minima = segment_argmin(
            np.array([]), np.array([0, 0, 0])
        )
        np.testing.assert_array_equal(arg, [-1, -1])
        assert np.isinf(minima).all()


# ----------------------------------------------------------------------
# Backend CSR == tuple-list equivalence


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendCSREquivalence:
    def _dataset(self):
        pts, _ = make_blobs(
            n=240, n_clusters=4, dim=8, std=0.7, spread=5.0,
            outlier_fraction=0.1, seed=0,
        )
        return MetricDataset(pts)

    def _assert_match(self, csr, rows, with_distances):
        assert csr.n_queries == len(rows)
        if not with_distances:
            assert csr.dists is None
        for i, (w_ids, w_d) in enumerate(rows):
            g_ids, g_d = csr.row(i)
            np.testing.assert_array_equal(g_ids, w_ids)
            assert np.all(np.diff(g_ids) > 0)  # sorted ascending
            if with_distances:
                np.testing.assert_allclose(g_d, w_d, atol=1e-9)

    @pytest.mark.parametrize("with_distances", [True, False])
    def test_scalar_radius(self, backend, with_distances):
        ds = self._dataset()
        index = build_index(backend, ds, radius_hint=1.8)
        queries = np.arange(0, ds.n, 3, dtype=np.intp)
        csr = index.range_query_batch_csr(
            queries, 1.8, with_distances=with_distances
        )
        rows = index.range_query_batch(
            queries, 1.8, with_distances=with_distances
        )
        self._assert_match(csr, rows, with_distances)
        assert csr.ids.size > 0  # non-degenerate instance

    def test_per_query_radii(self, backend):
        ds = self._dataset()
        index = build_index(backend, ds, radius_hint=2.0)
        queries = np.arange(0, 60, dtype=np.intp)
        radii = np.linspace(0.4, 2.4, queries.size)
        csr = index.range_query_batch_csr(queries, radii)
        rows = index.range_query_batch(queries, radii)
        self._assert_match(csr, rows, with_distances=True)

    @pytest.mark.parametrize("with_distances", [True, False])
    def test_payload_queries(self, backend, with_distances):
        ds = self._dataset()
        index = build_index(backend, ds, radius_hint=1.5)
        rng = np.random.default_rng(7)
        payloads = ds.points[::5] + rng.normal(0, 0.05, ds.points[::5].shape)
        csr = index.range_query_points_csr(
            payloads, 1.5, with_distances=with_distances
        )
        rows = index.range_query_points(
            payloads, 1.5, with_distances=with_distances
        )
        self._assert_match(csr, rows, with_distances)

    def test_counters_advance_identically(self, backend):
        ds = self._dataset()
        a = build_index(backend, ds, radius_hint=1.8)
        b = build_index(backend, ds, radius_hint=1.8)
        queries = np.arange(0, ds.n, 4, dtype=np.intp)
        a.reset_counters()
        b.reset_counters()
        a.range_query_batch_csr(queries, 1.8)
        b.range_query_batch(queries, 1.8)
        assert a.counters() == b.counters()


@pytest.mark.parametrize("backend", ("brute", "covertree"))
def test_csr_equivalence_edit_distance(backend):
    strings = _words(n=120, seed=2)
    ds = MetricDataset(strings, EditDistanceMetric())
    index = build_index(backend, ds, radius_hint=3.0)
    queries = np.arange(0, ds.n, 2, dtype=np.intp)
    csr = index.range_query_batch_csr(queries, 3.0)
    rows = index.range_query_batch(queries, 3.0)
    assert csr.n_queries == len(rows)
    for i, (w_ids, w_d) in enumerate(rows):
        g_ids, g_d = csr.row(i)
        np.testing.assert_array_equal(g_ids, w_ids)
        np.testing.assert_allclose(g_d, w_d)


# ----------------------------------------------------------------------
# Epoch-batched ingestion parity


@pytest.mark.parametrize("spec", INDEX_SETTINGS)
@pytest.mark.parametrize(
    "name,pts,eps,min_pts",
    [("blobs", _blobs(), 0.7, 6), ("moons", _moons(), 0.14, 6)],
    ids=["blobs", "moons"],
)
class TestEpochBatchedParity:
    def test_epoch_matches_per_element_and_dense(
        self, monkeypatch, spec, name, pts, eps, min_pts
    ):
        monkeypatch.setenv(DEFAULT_INDEX_ENV, spec)
        ds = MetricDataset(pts)
        dense = StreamingApproxDBSCAN(eps, min_pts, rho=0.5).fit(ds)
        epoch = StreamingApproxDBSCAN(
            eps, min_pts, rho=0.5, index=spec, epoch_batched=True
        ).fit(ds)
        per_el = StreamingApproxDBSCAN(
            eps, min_pts, rho=0.5, index=spec, epoch_batched=False
        ).fit(ds)

        # Bit-identical labels — not up-to-relabeling, *identical*:
        # all three paths visit arrivals in the same order and must
        # make the same center/watch/label decisions.
        np.testing.assert_array_equal(epoch.labels, dense.labels)
        np.testing.assert_array_equal(epoch.labels, per_el.labels)

        assert epoch.stats["ingest_mode"] == "epoch"
        assert per_el.stats["ingest_mode"] == "per-element"
        assert epoch.stats["n_centers"] == per_el.stats["n_centers"]
        assert epoch.stats["watch_size"] == per_el.stats["watch_size"]

        # Work parity: epoch-batching reshapes the evaluation schedule
        # but performs exactly the same evaluations.
        assert _counters(epoch) == _counters(per_el)
        assert _counters(epoch)["n_range_queries"] > 0


@pytest.mark.parametrize("spec", ("auto", "brute", "covertree"))
def test_epoch_parity_edit_distance_stream(monkeypatch, spec):
    """Non-vector payloads take the list-based epoch expansion path."""
    monkeypatch.setenv(DEFAULT_INDEX_ENV, spec)
    words = _words()
    metric = EditDistanceMetric()

    def factory():
        return iter(list(words))

    def run(**kw):
        return StreamingApproxDBSCAN(
            2.0, 4, rho=0.5, metric=metric, **kw
        ).fit_stream(factory, n_hint=len(words))

    dense = run()
    epoch = run(index=spec, epoch_batched=True)
    per_el = run(index=spec, epoch_batched=False)
    np.testing.assert_array_equal(epoch.labels, dense.labels)
    np.testing.assert_array_equal(epoch.labels, per_el.labels)
    assert _counters(epoch) == _counters(per_el)


def test_grid_env_preference_falls_back_for_strings(monkeypatch):
    """A process-wide grid preference must not break string streams:
    the registry falls back to the auto policy for metrics grid cannot
    serve, and the epoch path still matches dense labels."""
    monkeypatch.setenv(DEFAULT_INDEX_ENV, "grid")
    words = _words(n=120, seed=5)
    metric = EditDistanceMetric()

    def factory():
        return iter(list(words))

    dense = StreamingApproxDBSCAN(2.0, 4, rho=0.5, metric=metric).fit_stream(
        factory, n_hint=len(words)
    )
    epoch = StreamingApproxDBSCAN(
        2.0, 4, rho=0.5, metric=metric, index="auto", epoch_batched=True
    ).fit_stream(factory, n_hint=len(words))
    np.testing.assert_array_equal(epoch.labels, dense.labels)


# ----------------------------------------------------------------------
# Windowed insert_many consumes the same CSR machinery


@pytest.mark.parametrize("backend", BACKENDS)
def test_windowed_insert_many_matches_insert(backend):
    rng = np.random.default_rng(11)
    pts = np.vstack([
        rng.normal([0.0, 0.0], 0.25, size=(140, 2)),
        rng.normal([6.0, 0.0], 0.25, size=(140, 2)),
        rng.normal([3.0, 40.0], 0.25, size=(20, 2)),
    ])
    order = rng.permutation(len(pts))
    pts = pts[order]

    def build():
        return WindowedApproxDBSCAN(
            1.0, 5, rho=0.5, window=240, n_buckets=6, index=backend
        )

    one = build()
    for p in pts:
        one.insert(p)
    many = build()
    many.insert_many(pts)
    dense = WindowedApproxDBSCAN(1.0, 5, rho=0.5, window=240, n_buckets=6)
    dense.insert_many(pts)

    assert many.n_live_centers == one.n_live_centers
    assert many.n_clusters == one.n_clusters == dense.n_clusters
    probes = np.array([[0.0, 0.0], [6.0, 0.0], [3.0, 40.0], [50.0, 50.0]])
    for p in probes:
        assert many.predict(p) == one.predict(p)
