"""Tests for the V-measure family and pair-confusion counting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    homogeneity_completeness_v,
    pair_confusion_matrix,
    purity,
    rand_index,
    v_measure,
)

label_lists = st.lists(st.integers(-1, 4), min_size=2, max_size=30)


class TestVMeasure:
    def test_perfect(self):
        h, c, v = homogeneity_completeness_v([0, 0, 1, 1], [1, 1, 0, 0])
        assert h == pytest.approx(1.0)
        assert c == pytest.approx(1.0)
        assert v == pytest.approx(1.0)

    def test_homogeneous_but_incomplete(self):
        # Every predicted cluster is pure, but class 0 is split.
        h, c, v = homogeneity_completeness_v([0, 0, 1, 1], [0, 1, 2, 2])
        assert h == pytest.approx(1.0)
        assert c < 1.0
        assert c < v < 1.0 or v == pytest.approx(2 * h * c / (h + c))

    def test_complete_but_inhomogeneous(self):
        # One predicted cluster swallows both classes.
        h, c, v = homogeneity_completeness_v([0, 0, 1, 1], [0, 0, 0, 0])
        assert c == pytest.approx(1.0)
        assert h == pytest.approx(0.0)
        assert v == pytest.approx(0.0)

    def test_symmetry_swaps_h_and_c(self):
        a, b = [0, 0, 1, 1], [0, 1, 2, 2]
        h1, c1, _ = homogeneity_completeness_v(a, b)
        h2, c2, _ = homogeneity_completeness_v(b, a)
        assert h1 == pytest.approx(c2)
        assert c1 == pytest.approx(h2)

    @given(label_lists)
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, labels):
        rng = np.random.default_rng(0)
        other = rng.integers(0, 3, size=len(labels)).tolist()
        h, c, v = homogeneity_completeness_v(labels, other)
        for value in (h, c, v):
            assert -1e-9 <= value <= 1.0 + 1e-9

    def test_v_measure_shortcut(self):
        a, b = [0, 0, 1, 1], [0, 1, 2, 2]
        assert v_measure(a, b) == homogeneity_completeness_v(a, b)[2]


class TestPurity:
    def test_perfect(self):
        assert purity([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_known_value(self):
        # Predicted cluster 0 = {0,0,1}: majority 2; cluster 1 = {1}: 1.
        assert purity([0, 0, 1, 1], [0, 0, 0, 1]) == pytest.approx(0.75)

    def test_single_cluster(self):
        assert purity([0, 1, 2], [0, 0, 0]) == pytest.approx(1.0 / 3.0)


class TestPairConfusion:
    def test_identical_partitions(self):
        m = pair_confusion_matrix([0, 0, 1, 1], [0, 0, 1, 1])
        assert m[0, 1] == 0 and m[1, 0] == 0
        assert m[1, 1] == 4  # 2 co-clustered unordered pairs, ordered = 4

    def test_total_is_ordered_pairs(self):
        labels = [0, 1, 1, 2, 0]
        m = pair_confusion_matrix(labels, [2, 2, 0, 1, 1])
        n = len(labels)
        assert m.sum() == n * (n - 1)

    def test_consistent_with_rand_index(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=50)
        b = rng.integers(0, 3, size=50)
        m = pair_confusion_matrix(a, b)
        ri = (m[0, 0] + m[1, 1]) / m.sum()
        assert ri == pytest.approx(rand_index(a, b))

    @given(label_lists)
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, labels):
        rng = np.random.default_rng(2)
        other = rng.integers(0, 3, size=len(labels)).tolist()
        m = pair_confusion_matrix(labels, other)
        assert np.all(m >= 0)
