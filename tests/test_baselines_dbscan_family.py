"""Tests for the DBSCAN-family baselines: original DBSCAN, DBSCAN++,
DYW_DBSCAN, and Gan--Tao exact/approximate."""

import numpy as np
import pytest

from repro.baselines import DBSCANPlusPlus, DYWDBSCAN, GanTaoDBSCAN, OriginalDBSCAN, dbscan
from repro.metricspace import EditDistanceMetric, ManhattanMetric, MetricDataset

from conftest import core_partition, same_cluster_pairs


def blob_instance(seed=0, n_out=6):
    rng = np.random.default_rng(seed)
    pts = np.vstack([
        rng.normal(0.0, 0.3, size=(50, 2)),
        rng.normal([5.0, 0.0], 0.3, size=(50, 2)),
        rng.uniform(-12.0, 12.0, size=(n_out, 2)),
    ])
    return MetricDataset(pts)


class TestOriginalDBSCAN:
    def test_basic_clusters(self, tiny_line):
        r = dbscan(tiny_line, 0.5, 3)
        assert r.n_clusters == 2
        assert r.labels[-1] == -1

    def test_core_counts_self(self):
        # Three points within eps of each other; MinPts=3 counts self.
        ds = MetricDataset(np.array([[0.0], [0.1], [0.2]]))
        r = OriginalDBSCAN(0.2, 3).fit(ds)
        assert r.core_mask[1]  # middle point has all three in its ball

    def test_border_points_not_core(self, two_blobs):
        ds, _ = two_blobs
        r = OriginalDBSCAN(1.0, 10).fit(ds)
        borders = (r.labels >= 0) & ~r.core_mask
        # Blob edges usually produce borders; at minimum none may be core.
        assert not np.any(r.core_mask & borders)

    def test_works_with_any_metric(self):
        ds = MetricDataset(np.array([[0.0, 0.0], [0.5, 0.5], [9.0, 9.0]]),
                           ManhattanMetric())
        r = OriginalDBSCAN(1.5, 2).fit(ds)
        assert r.labels[0] == r.labels[1]
        assert r.labels[2] == -1

    def test_all_points_identical(self):
        ds = MetricDataset(np.zeros((10, 2)))
        r = OriginalDBSCAN(0.1, 5).fit(ds)
        assert r.n_clusters == 1
        assert r.n_noise == 0


class TestDBSCANPlusPlus:
    def test_full_ratio_matches_exact_cores(self):
        """ratio=1.0 samples everything, so core points equal DBSCAN's."""
        ds = blob_instance(1)
        ref = OriginalDBSCAN(0.5, 5).fit(ds)
        pp = DBSCANPlusPlus(0.5, 5, ratio=1.0).fit(ds)
        assert np.array_equal(pp.core_mask, ref.core_mask)

    def test_sampled_cores_subset_of_true_cores(self):
        ds = blob_instance(2)
        ref = OriginalDBSCAN(0.5, 5).fit(ds)
        pp = DBSCANPlusPlus(0.5, 5, ratio=0.3, seed=3).fit(ds)
        assert np.all(~pp.core_mask | ref.core_mask)

    def test_separated_blobs_recovered(self):
        ds = blob_instance(3, n_out=0)
        pp = DBSCANPlusPlus(0.5, 5, ratio=0.5, seed=0).fit(ds)
        assert pp.n_clusters == 2

    def test_kcenter_init(self):
        ds = blob_instance(4, n_out=0)
        pp = DBSCANPlusPlus(0.5, 5, ratio=0.3, init="kcenter").fit(ds)
        assert pp.n_clusters >= 2

    def test_deterministic_under_seed(self):
        ds = blob_instance(5)
        a = DBSCANPlusPlus(0.5, 5, seed=11).fit(ds)
        b = DBSCANPlusPlus(0.5, 5, seed=11).fit(ds)
        assert np.array_equal(a.labels, b.labels)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DBSCANPlusPlus(0.5, 5, ratio=0.0)
        with pytest.raises(ValueError):
            DBSCANPlusPlus(0.5, 5, init="fancy")


class TestDYW:
    def test_matches_reference_partition(self):
        """DYW is exact DBSCAN with a different pre-processing, so the
        core partition must match brute force."""
        ds = blob_instance(6)
        ref = OriginalDBSCAN(0.5, 5).fit(ds)
        dyw = DYWDBSCAN(0.5, 5, z_tilde=10, seed=0).fit(ds)
        assert np.array_equal(dyw.core_mask, ref.core_mask)
        assert core_partition(dyw.labels, dyw.core_mask) == core_partition(
            ref.labels, ref.core_mask
        )

    def test_underestimated_z_still_correct(self):
        """Singleton fallback keeps the result correct even when z̃ is
        far below the true outlier count (only speed degrades)."""
        ds = blob_instance(7, n_out=15)
        ref = OriginalDBSCAN(0.5, 5).fit(ds)
        dyw = DYWDBSCAN(0.5, 5, z_tilde=0, seed=1).fit(ds)
        assert np.array_equal(dyw.core_mask, ref.core_mask)

    def test_text_metric(self, text_dataset):
        ds, _ = text_dataset
        ref = OriginalDBSCAN(2.0, 3).fit(ds)
        dyw = DYWDBSCAN(2.0, 3, z_tilde=2, seed=0).fit(ds)
        assert np.array_equal(dyw.core_mask, ref.core_mask)

    def test_validation(self):
        with pytest.raises(ValueError):
            DYWDBSCAN(0.5, 5, z_tilde=-1)
        with pytest.raises(ValueError):
            DYWDBSCAN(0.5, 5, eta=-1.0)


class TestGanTao:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_matches_reference(self, seed):
        ds = blob_instance(seed + 10)
        ref = OriginalDBSCAN(0.5, 5).fit(ds)
        gt = GanTaoDBSCAN(0.5, 5).fit(ds)
        assert np.array_equal(gt.core_mask, ref.core_mask)
        assert core_partition(gt.labels, gt.core_mask) == core_partition(
            ref.labels, ref.core_mask
        )
        assert np.array_equal(gt.labels == -1, ref.labels == -1)

    @pytest.mark.parametrize("rho", [0.25, 0.5, 1.0])
    def test_approx_sandwich(self, rho):
        ds = blob_instance(20)
        eps, min_pts = 0.5, 5
        gt = GanTaoDBSCAN(eps, min_pts, rho=rho).fit(ds)
        lo = OriginalDBSCAN(eps, min_pts).fit(ds)
        hi = OriginalDBSCAN((1.0 + rho) * eps, min_pts).fit(ds)
        cores = np.flatnonzero(lo.core_mask)
        assert same_cluster_pairs(lo.labels, cores) <= same_cluster_pairs(
            gt.labels, cores
        ) <= same_cluster_pairs(hi.labels, cores)

    def test_core_mask_identical_exact_vs_approx(self):
        """ρ only relaxes merging; core labeling stays exact."""
        ds = blob_instance(21)
        exact = GanTaoDBSCAN(0.5, 5).fit(ds)
        approx = GanTaoDBSCAN(0.5, 5, rho=0.5).fit(ds)
        assert np.array_equal(exact.core_mask, approx.core_mask)

    def test_higher_dimension(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([
            rng.normal(0.0, 0.3, size=(40, 5)),
            rng.normal(6.0, 0.3, size=(40, 5)),
        ])
        ds = MetricDataset(pts)
        ref = OriginalDBSCAN(1.5, 5).fit(ds)
        gt = GanTaoDBSCAN(1.5, 5).fit(ds)
        assert np.array_equal(gt.core_mask, ref.core_mask)

    def test_requires_euclidean(self):
        ds = MetricDataset(["ab", "cd"], EditDistanceMetric())
        with pytest.raises(ValueError):
            GanTaoDBSCAN(1.0, 2).fit(ds)

    def test_stats(self):
        ds = blob_instance(22)
        gt = GanTaoDBSCAN(0.5, 5, rho=0.5).fit(ds)
        assert gt.stats["algorithm"] == "gt_approx"
        assert gt.stats["n_cells"] > 0
