"""Tests for the OPTICS baseline and its DBSCAN extraction."""

import numpy as np
import pytest

from repro.baselines import OPTICS, OriginalDBSCAN
from repro.metricspace import MetricDataset

from conftest import core_partition


def blob_instance(seed=0):
    rng = np.random.default_rng(seed)
    pts = np.vstack([
        rng.normal(0.0, 0.3, size=(50, 2)),
        rng.normal([5.0, 0.0], 0.3, size=(50, 2)),
        rng.uniform(-12.0, 12.0, size=(5, 2)),
    ])
    return MetricDataset(pts)


class TestOrdering:
    def test_ordering_is_permutation(self):
        ds = blob_instance(0)
        ordering = OPTICS(min_pts=5).compute_ordering(ds)
        assert sorted(ordering.order.tolist()) == list(range(ds.n))

    def test_core_distance_is_kth_neighbor(self):
        ds = blob_instance(1)
        min_pts = 5
        ordering = OPTICS(min_pts=min_pts).compute_ordering(ds)
        for p in range(0, ds.n, 11):
            dists = np.sort(ds.distances_from(p))
            assert ordering.core_distance[p] == pytest.approx(
                float(dists[min_pts - 1])
            )

    def test_eps_max_caps_core_distance(self):
        ds = blob_instance(2)
        ordering = OPTICS(min_pts=5, eps_max=0.2).compute_ordering(ds)
        finite = np.isfinite(ordering.core_distance)
        assert np.all(ordering.core_distance[finite] <= 0.2)

    def test_reachability_at_least_core_distance_of_predecessor(self):
        """Reachability of a point is >= the core distance of some
        earlier core point; in particular >= min core distance."""
        ds = blob_instance(3)
        ordering = OPTICS(min_pts=5).compute_ordering(ds)
        finite = np.isfinite(ordering.reachability)
        min_core = np.nanmin(
            np.where(np.isfinite(ordering.core_distance),
                     ordering.core_distance, np.nan)
        )
        assert np.all(ordering.reachability[finite] >= min_core - 1e-12)


class TestExtraction:
    @pytest.mark.parametrize("seed", range(3))
    def test_core_partition_matches_dbscan(self, seed):
        """Extraction at eps must reproduce DBSCAN's core partition."""
        ds = blob_instance(seed + 10)
        eps, min_pts = 0.5, 5
        result = OPTICS(min_pts=min_pts, eps_max=2.0).fit(ds, eps=eps)
        ref = OriginalDBSCAN(eps, min_pts).fit(ds)
        assert np.array_equal(result.core_mask, ref.core_mask)
        assert core_partition(result.labels, result.core_mask) == core_partition(
            ref.labels, ref.core_mask
        )

    def test_one_ordering_many_extractions(self):
        """The OPTICS promise: one ordering serves every eps' <= eps_max."""
        ds = blob_instance(20)
        min_pts = 5
        ordering = OPTICS(min_pts=min_pts, eps_max=2.0).compute_ordering(ds)
        for eps in (0.3, 0.5, 1.0):
            labels = ordering.extract_dbscan(eps)
            ref = OriginalDBSCAN(eps, min_pts).fit(ds)
            core = ref.core_mask
            assert core_partition(labels, core) == core_partition(ref.labels, core)

    def test_extraction_beyond_eps_max_rejected(self):
        ds = blob_instance(21)
        ordering = OPTICS(min_pts=5, eps_max=0.5).compute_ordering(ds)
        with pytest.raises(ValueError):
            ordering.extract_dbscan(1.0)

    def test_fit_requires_eps_when_unbounded(self):
        ds = blob_instance(22)
        with pytest.raises(ValueError):
            OPTICS(min_pts=5).fit(ds)

    def test_metric_generic(self, text_dataset):
        ds, _ = text_dataset
        result = OPTICS(min_pts=3, eps_max=5.0).fit(ds, eps=2.0)
        ref = OriginalDBSCAN(2.0, 3).fit(ds)
        assert np.array_equal(result.core_mask, ref.core_mask)
