"""Smoke checks for the example scripts.

Each example must at least parse and expose a ``main`` callable; the
quickstart (the cheapest one) is additionally executed end-to-end so a
stale API in the examples fails the suite rather than the reader.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_importable_with_main(name):
    module = load_example(name)
    assert callable(getattr(module, "main", None)), f"{name} lacks main()"


def test_quickstart_runs(capsys, monkeypatch):
    """Execute the quickstart end-to-end on a shrunken workload."""
    module = load_example("quickstart.py")
    import repro.datasets as datasets

    original = datasets.make_moons

    def small_moons(n=1500, **kwargs):
        return original(n=200, **kwargs)

    monkeypatch.setattr(module, "make_moons", small_moons)
    module.main()
    out = capsys.readouterr().out
    assert "Our_Exact" in out
    assert "gonzalez" in out
