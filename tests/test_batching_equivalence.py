"""Equivalence regression tests for the batched distance engine.

The solvers must produce identical core-point partitions whether
distances flow through the vectorized block kernels or through the
scalar ``Metric.distance`` fallback loops (the pre-batching code path).
A wrapper metric that hides every vectorized override forces the scalar
path; outputs are compared via ``core_partition`` on seeded synthetic
datasets.
"""

import numpy as np
import pytest

from conftest import core_partition

from repro import (
    ApproxMetricDBSCAN,
    MetricDBSCAN,
    MetricDataset,
    StreamingApproxDBSCAN,
)
from repro.core.windowed import WindowedApproxDBSCAN
from repro.datasets import make_blobs, make_moons
from repro.metricspace import EuclideanMetric, Metric


class ScalarizedEuclidean(Metric):
    """Euclidean distance stripped of every vectorized override.

    ``is_vector_metric`` stays False, so payloads live in a list and all
    batch/cross/pair kernels fall back to the base-class scalar loops —
    the reference semantics the batched engine must reproduce.
    """

    is_vector_metric = False

    def __init__(self) -> None:
        self._inner = EuclideanMetric()

    def distance(self, a, b) -> float:
        return self._inner.distance(a, b)


def _instances():
    blobs, _ = make_blobs(
        n=240, n_clusters=3, dim=2, std=0.3, spread=8.0,
        outlier_fraction=0.08, seed=5,
    )
    moons, _ = make_moons(n=240, noise=0.05, outlier_fraction=0.05, seed=11)
    return [("blobs", blobs, 0.8, 6), ("moons", moons, 0.15, 6)]


@pytest.mark.parametrize("name,pts,eps,min_pts", _instances(),
                         ids=[i[0] for i in _instances()])
def test_exact_partition_matches_scalar_path(name, pts, eps, min_pts):
    fast = MetricDBSCAN(eps, min_pts).fit(MetricDataset(pts))
    slow = MetricDBSCAN(eps, min_pts).fit(
        MetricDataset(list(pts), ScalarizedEuclidean())
    )
    assert np.array_equal(fast.core_mask, slow.core_mask)
    assert core_partition(fast.labels, fast.core_mask) == core_partition(
        slow.labels, slow.core_mask
    )


@pytest.mark.parametrize("name,pts,eps,min_pts", _instances(),
                         ids=[i[0] for i in _instances()])
def test_approx_partition_matches_scalar_path(name, pts, eps, min_pts):
    fast = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(MetricDataset(pts))
    slow = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(
        MetricDataset(list(pts), ScalarizedEuclidean())
    )
    assert np.array_equal(fast.core_mask, slow.core_mask)
    assert core_partition(fast.labels, fast.core_mask) == core_partition(
        slow.labels, slow.core_mask
    )


@pytest.mark.parametrize("name,pts,eps,min_pts", _instances(),
                         ids=[i[0] for i in _instances()])
def test_streaming_labels_match_scalar_path(name, pts, eps, min_pts):
    fast = StreamingApproxDBSCAN(eps, min_pts, rho=0.5).fit(MetricDataset(pts))
    slow = StreamingApproxDBSCAN(
        eps, min_pts, rho=0.5, metric=ScalarizedEuclidean()
    ).fit(MetricDataset(list(pts), ScalarizedEuclidean()))
    assert np.array_equal(fast.labels, slow.labels)
    assert fast.stats["n_centers"] == slow.stats["n_centers"]
    assert fast.stats["summary_size"] == slow.stats["summary_size"]


def test_exact_and_approx_share_known_core_partition():
    """The approx solver's known-core points must partition identically
    to the exact solver's (restricted to the known-core subset)."""
    pts, _ = make_blobs(
        n=300, n_clusters=3, dim=2, std=0.25, spread=9.0,
        outlier_fraction=0.05, seed=3,
    )
    eps, min_pts = 0.8, 6
    exact = MetricDBSCAN(eps, min_pts).fit(MetricDataset(pts))
    approx = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(MetricDataset(pts))
    # Every known-core point of the approx run is core in the exact run.
    assert np.all(exact.core_mask[approx.core_mask])


def test_windowed_insert_many_matches_insert():
    pts, _ = make_moons(n=300, noise=0.06, outlier_fraction=0.05, seed=2)
    one = WindowedApproxDBSCAN(0.3, 5, rho=0.5, window=120, n_buckets=6)
    many = WindowedApproxDBSCAN(0.3, 5, rho=0.5, window=120, n_buckets=6)
    for row in pts:
        one.insert(row)
    many.insert_many(pts)
    assert one.n_seen == many.n_seen
    assert one.n_live_centers == many.n_live_centers
    assert one.n_clusters == many.n_clusters
    queries = pts[:: 29]
    for q in queries:
        assert one.predict(q) == many.predict(q)
