"""Equivalence regression tests for the batched distance engine.

The solvers must produce identical core-point partitions whether
distances flow through the vectorized block kernels or through the
scalar ``Metric.distance`` fallback loops (the pre-batching code path).
A wrapper metric that hides every vectorized override forces the scalar
path; outputs are compared via ``core_partition`` on seeded synthetic
datasets.
"""

import numpy as np
import pytest

from conftest import core_partition

from repro import (
    ApproxMetricDBSCAN,
    MetricDBSCAN,
    MetricDataset,
    StreamingApproxDBSCAN,
)
from repro.core.windowed import WindowedApproxDBSCAN
from repro.datasets import make_blobs, make_moons
from repro.metricspace import EuclideanMetric, Metric


class ScalarizedEuclidean(Metric):
    """Euclidean distance stripped of every vectorized override.

    ``is_vector_metric`` stays False, so payloads live in a list and all
    batch/cross/pair kernels fall back to the base-class scalar loops —
    the reference semantics the batched engine must reproduce.
    """

    is_vector_metric = False

    def __init__(self) -> None:
        self._inner = EuclideanMetric()

    def distance(self, a, b) -> float:
        return self._inner.distance(a, b)


def _instances():
    blobs, _ = make_blobs(
        n=240, n_clusters=3, dim=2, std=0.3, spread=8.0,
        outlier_fraction=0.08, seed=5,
    )
    moons, _ = make_moons(n=240, noise=0.05, outlier_fraction=0.05, seed=11)
    return [("blobs", blobs, 0.8, 6), ("moons", moons, 0.15, 6)]


@pytest.mark.parametrize("name,pts,eps,min_pts", _instances(),
                         ids=[i[0] for i in _instances()])
def test_exact_partition_matches_scalar_path(name, pts, eps, min_pts):
    fast = MetricDBSCAN(eps, min_pts).fit(MetricDataset(pts))
    slow = MetricDBSCAN(eps, min_pts).fit(
        MetricDataset(list(pts), ScalarizedEuclidean())
    )
    assert np.array_equal(fast.core_mask, slow.core_mask)
    assert core_partition(fast.labels, fast.core_mask) == core_partition(
        slow.labels, slow.core_mask
    )


@pytest.mark.parametrize("name,pts,eps,min_pts", _instances(),
                         ids=[i[0] for i in _instances()])
def test_approx_partition_matches_scalar_path(name, pts, eps, min_pts):
    # workers=1: under REPRO_WORKERS the vector and scalarized runs
    # would pick different shard strategies (grid vs random fallback)
    # and approx core masks are net-dependent.
    fast = ApproxMetricDBSCAN(eps, min_pts, rho=0.5, workers=1).fit(
        MetricDataset(pts)
    )
    slow = ApproxMetricDBSCAN(eps, min_pts, rho=0.5, workers=1).fit(
        MetricDataset(list(pts), ScalarizedEuclidean())
    )
    assert np.array_equal(fast.core_mask, slow.core_mask)
    assert core_partition(fast.labels, fast.core_mask) == core_partition(
        slow.labels, slow.core_mask
    )


@pytest.mark.parametrize("name,pts,eps,min_pts", _instances(),
                         ids=[i[0] for i in _instances()])
def test_streaming_labels_match_scalar_path(name, pts, eps, min_pts):
    fast = StreamingApproxDBSCAN(eps, min_pts, rho=0.5).fit(MetricDataset(pts))
    slow = StreamingApproxDBSCAN(
        eps, min_pts, rho=0.5, metric=ScalarizedEuclidean()
    ).fit(MetricDataset(list(pts), ScalarizedEuclidean()))
    assert np.array_equal(fast.labels, slow.labels)
    assert fast.stats["n_centers"] == slow.stats["n_centers"]
    assert fast.stats["summary_size"] == slow.stats["summary_size"]


def test_exact_and_approx_share_known_core_partition():
    """The approx solver's known-core points must partition identically
    to the exact solver's (restricted to the known-core subset)."""
    pts, _ = make_blobs(
        n=300, n_clusters=3, dim=2, std=0.25, spread=9.0,
        outlier_fraction=0.05, seed=3,
    )
    eps, min_pts = 0.8, 6
    exact = MetricDBSCAN(eps, min_pts).fit(MetricDataset(pts))
    approx = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(MetricDataset(pts))
    # Every known-core point of the approx run is core in the exact run.
    assert np.all(exact.core_mask[approx.core_mask])


def test_windowed_insert_many_matches_insert():
    pts, _ = make_moons(n=300, noise=0.06, outlier_fraction=0.05, seed=2)
    one = WindowedApproxDBSCAN(0.3, 5, rho=0.5, window=120, n_buckets=6)
    many = WindowedApproxDBSCAN(0.3, 5, rho=0.5, window=120, n_buckets=6)
    for row in pts:
        one.insert(row)
    many.insert_many(pts)
    assert one.n_seen == many.n_seen
    assert one.n_live_centers == many.n_live_centers
    assert one.n_clusters == many.n_clusters
    queries = pts[:: 29]
    for q in queries:
        assert one.predict(q) == many.predict(q)


# ----------------------------------------------------------------------
# Certified mixed-precision cascade: adversarial band pairs


@pytest.fixture
def force_float32():
    """Force the cascade's float32 tier regardless of block size, and
    restore the default policy afterwards."""
    from repro.metricspace import precision

    precision.set_precision("float32")
    precision.stats.reset()
    yield precision.stats
    precision.set_precision(None)


def _exact_mask(metric, queries, targets, threshold):
    """Reference decisions from the float64 difference kernel (not the
    gram expansion, whose cancellation error is exactly what the
    cascade's rescue avoids)."""
    q = np.asarray(queries, dtype=np.float64)
    t = np.asarray(targets, dtype=np.float64)
    diff = q[:, None, :] - t[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff) <= threshold * threshold


def test_cascade_rescues_large_norm_offsets(force_float32):
    """Points at offset 1e4 with pair gaps of ±1e-4 relative: every
    pair lands inside the float32 uncertainty band (the norms inflate
    the rounding bound far past the gap), so the rescue must recompute
    all of them — and get every verdict right."""
    rng = np.random.default_rng(42)
    metric = EuclideanMetric()
    thr = 2.0
    dim = 8
    base = np.full(dim, 1e4 / np.sqrt(dim))
    queries = base + rng.normal(0, 0.5, size=(24, dim))
    # Targets displaced from each query's direction by thr·(1 ± δ):
    # alternating just-inside / just-outside the threshold.
    deltas = np.where(np.arange(32) % 2 == 0, 1e-4, -1e-4)
    dirs = rng.normal(size=(32, dim))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    targets = base + dirs * thr * (1.0 + deltas)[:, None]
    mask = metric.cross_certified(queries, targets, thr)
    np.testing.assert_array_equal(
        mask, _exact_mask(metric, queries, targets, thr)
    )
    stats = force_float32
    assert stats.n_rescued == mask.size  # every pair was a band pair


def test_cascade_rescues_near_duplicates(force_float32):
    """Near-duplicate points decided at a tiny threshold: thr=1e-4
    with displacements thr·(1 ± 1e-3).  The float32 tier cannot
    separate d² from thr² at that scale, so the band pairs must be
    rescued exactly."""
    rng = np.random.default_rng(7)
    metric = EuclideanMetric()
    thr = 1e-4
    dim = 8
    queries = rng.normal(0, 1.0, size=(16, dim))
    dirs = rng.normal(size=(16, dim))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    deltas = np.where(np.arange(16) % 2 == 0, 1e-3, -1e-3)
    targets = queries + dirs * thr * (1.0 + deltas)[:, None]
    mask = metric.cross_certified(queries, targets, thr)
    np.testing.assert_array_equal(
        mask, _exact_mask(metric, queries, targets, thr)
    )
    stats = force_float32
    assert stats.n_rescued >= 16  # at least the diagonal band pairs


@pytest.mark.parametrize("backend", ["auto", "brute", "grid", "covertree"])
def test_labels_bit_identical_cascade_vs_float64(monkeypatch, backend):
    """End-to-end: the forced-float32 cascade and the pure-float64
    engine must agree label-for-label under every index backend,
    including on data living at a large offset (worst case for the
    gram expansion's cancellation)."""
    monkeypatch.setenv("REPRO_DEFAULT_INDEX", backend)
    pts, _ = make_blobs(n=400, n_clusters=3, dim=4, std=0.5, seed=9)
    pts = pts + 1e3  # push norms up without changing the geometry
    eps, min_pts = 0.9, 5

    monkeypatch.setenv("REPRO_PRECISION", "float64")
    ref_exact = MetricDBSCAN(eps, min_pts).fit(MetricDataset(pts))
    ref_approx = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(
        MetricDataset(pts)
    )
    monkeypatch.setenv("REPRO_PRECISION", "float32")
    got_exact = MetricDBSCAN(eps, min_pts).fit(MetricDataset(pts))
    got_approx = ApproxMetricDBSCAN(eps, min_pts, rho=0.5).fit(
        MetricDataset(pts)
    )
    np.testing.assert_array_equal(ref_exact.labels, got_exact.labels)
    np.testing.assert_array_equal(ref_exact.core_mask, got_exact.core_mask)
    np.testing.assert_array_equal(ref_approx.labels, got_approx.labels)
