"""Streaming DBSCAN over a drifting session stream (Table-4 scenario).

Simulates a Spotify-style session stream with temporal drift, runs the
paper's 3-pass streaming ρ-approximate DBSCAN on growing prefixes
(1% / 10% / 50% / 100%), and reports quality plus the bounded memory
footprint ``(|E| + |M|) / n`` — the quantity Figure 6 plots.  Two
streaming baselines run for comparison.

Run:  python examples/streaming_sessions.py
"""

from repro import MetricDataset, StreamingApproxDBSCAN
from repro.baselines import BICO, DBStream
from repro.datasets import make_session_stream, prefix_split
from repro.evaluation import adjusted_mutual_information, adjusted_rand_index


def main() -> None:
    points, truth = make_session_stream(
        n=8000, dim=8, n_clusters=4, drift=2.0, outlier_fraction=0.01, seed=0
    )
    eps, min_pts, rho = 2.5, 10, 0.5

    print("drifting session stream: n=8000, dim=8, 4 drifting components\n")
    header = f"{'prefix':>7} {'n':>6} | {'ours ARI':>8} {'ours AMI':>8} {'mem ratio':>9} | {'DBStream ARI':>12} {'BICO ARI':>9}"
    print(header)
    print("-" * len(header))

    for fraction in (0.01, 0.10, 0.50, 1.00):
        pts, y = prefix_split(points, truth, fraction)
        ds = MetricDataset(pts)

        ours = StreamingApproxDBSCAN(eps, min_pts, rho=rho).fit(ds)
        dbs = DBStream(radius=eps / 2.0, w_min=2.0).fit(ds)
        bico = BICO(n_clusters=4, coreset_size=100, seed=0).fit(ds)

        print(
            f"{fraction:>6.0%} {ds.n:>6} | "
            f"{adjusted_rand_index(y, ours.labels):>8.3f} "
            f"{adjusted_mutual_information(y, ours.labels):>8.3f} "
            f"{ours.stats['memory_ratio']:>9.3f} | "
            f"{adjusted_rand_index(y, dbs.labels):>12.3f} "
            f"{adjusted_rand_index(y, bico.labels):>9.3f}"
        )

    print(
        "\nNote: the memory ratio falls as n grows — Theorem 4's footprint "
        "(|E| + |M|) depends on the domain, not the stream length."
    )


if __name__ == "__main__":
    main()
