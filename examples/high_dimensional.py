"""High-dimensional data with low intrinsic dimension + adversarial
outliers — the paper's core setting (Assumption 1).

Builds a 784-dimensional dataset whose inliers live on a 4-dimensional
manifold (MNIST stand-in, DESIGN.md §3) with 1% uniform outliers, then
shows:

1. all three of the paper's algorithms recover the planted clusters and
   isolate the outliers;
2. the distance-evaluation counts stay far below the brute-force n²/2,
   even though the *ambient* dimension is 784 — what matters is the
   doubling dimension of the inliers (Lemma 1);
3. outliers only cost extra centers, never correctness.

Run:  python examples/high_dimensional.py
"""

import numpy as np

from repro import ApproxMetricDBSCAN, MetricDBSCAN, MetricDataset, StreamingApproxDBSCAN
from repro.datasets import make_low_doubling
from repro.evaluation import adjusted_rand_index


def main() -> None:
    n = 1200
    points, truth = make_low_doubling(
        n=n, ambient_dim=784, intrinsic_dim=4, n_clusters=8,
        outlier_fraction=0.01, cluster_std=0.6, separation=12.0, seed=0,
    )
    eps, min_pts = 3.0, 10
    brute_force_evals = n * (n - 1) // 2

    print(f"manifold data: n={n}, ambient dim 784, intrinsic dim 4, "
          f"{int(np.sum(truth == -1))} planted outliers")
    print(f"brute-force pairwise distances would be {brute_force_evals:,}\n")

    print(f"{'algorithm':<14} {'clusters':>8} {'noise':>6} {'ARI':>7} "
          f"{'dist evals':>12} {'vs brute':>9}")
    for name, solver in [
        ("Our_Exact", MetricDBSCAN(eps, min_pts)),
        ("Our_Approx", ApproxMetricDBSCAN(eps, min_pts, rho=0.5)),
        ("Our_Streaming", StreamingApproxDBSCAN(eps, min_pts, rho=0.5)),
    ]:
        counted = MetricDataset(points).with_counting()
        result = solver.fit(counted)
        evals = counted.metric.count
        print(
            f"{name:<14} {result.n_clusters:>8} {result.n_noise:>6} "
            f"{adjusted_rand_index(truth, result.labels):>7.3f} "
            f"{evals:>12,} {evals / brute_force_evals:>8.2f}x"
        )

    print(
        "\nNote: the streaming variant re-derives distances on every one of "
        "its three passes — it trades distance work for O(1) memory, so its "
        "eval count exceeds the batch solvers at this small n."
    )

    # How well are the planted outliers isolated?
    exact = MetricDBSCAN(eps, min_pts).fit(MetricDataset(points))
    planted = truth == -1
    flagged = exact.labels == -1
    recall = float(np.sum(planted & flagged)) / max(1, int(np.sum(planted)))
    print(f"\nplanted-outlier recall of the exact solver: {recall:.2%}")


if __name__ == "__main__":
    main()
