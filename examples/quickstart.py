"""Quickstart: exact, approximate, and streaming metric DBSCAN.

Clusters the two-moons dataset (the paper's *Moons*) with all three of
the paper's algorithms and the original DBSCAN, and prints quality
(ARI/AMI against the generator's ground truth) plus the per-phase
timing breakdown of the exact solver.

Run:  python examples/quickstart.py
"""


from repro import (
    ApproxMetricDBSCAN,
    MetricDBSCAN,
    MetricDataset,
    StreamingApproxDBSCAN,
)
from repro.baselines import OriginalDBSCAN
from repro.datasets import make_moons
from repro.evaluation import adjusted_mutual_information, adjusted_rand_index


def main() -> None:
    points, truth = make_moons(n=1500, noise=0.06, outlier_fraction=0.02, seed=0)
    dataset = MetricDataset(points)  # Euclidean by default
    eps, min_pts = 0.12, 10

    solvers = {
        "Our_Exact": MetricDBSCAN(eps, min_pts),
        "Our_Approx (rho=0.5)": ApproxMetricDBSCAN(eps, min_pts, rho=0.5),
        "Our_Streaming (rho=0.5)": StreamingApproxDBSCAN(eps, min_pts, rho=0.5),
        "Original DBSCAN": OriginalDBSCAN(eps, min_pts),
    }

    print(f"moons: n={dataset.n}, eps={eps}, MinPts={min_pts}\n")
    print(f"{'algorithm':<26} {'clusters':>8} {'noise':>6} {'ARI':>7} {'AMI':>7} {'time(s)':>9}")
    for name, solver in solvers.items():
        result = solver.fit(dataset)
        ari = adjusted_rand_index(truth, result.labels)
        ami = adjusted_mutual_information(truth, result.labels)
        print(
            f"{name:<26} {result.n_clusters:>8} {result.n_noise:>6} "
            f"{ari:>7.3f} {ami:>7.3f} {result.timings.total:>9.3f}"
        )

    print("\nExact-solver phase breakdown (the Table-2 quantity):")
    exact_result = solvers["Our_Exact"].fit(dataset)
    for phase, seconds in exact_result.timings.phases.items():
        frac = exact_result.timings.fraction(phase)
        print(f"  {phase:<15} {seconds:8.4f}s  ({frac:5.1%})")


if __name__ == "__main__":
    main()
