"""Parameter tuning with a cached Gonzalez net (Remarks 5/6).

The radius-guided Gonzalez preprocessing dominates the runtime of the
exact solver (Table 2 reports 60-99%).  Because a net built with
``r̄ = ε0/2`` works for every ``ε >= ε0``, a parameter sweep only pays
for the preprocessing once.  This example sweeps a grid of (ε, MinPts)
both cold and with a cached net and prints the saved work.

Run:  python examples/parameter_tuning.py
"""

import time

from repro import MetricDBSCAN, MetricDataset
from repro.datasets import make_low_doubling
from repro.evaluation import adjusted_rand_index


def main() -> None:
    points, truth = make_low_doubling(
        n=1500, ambient_dim=128, intrinsic_dim=4, n_clusters=6,
        outlier_fraction=0.01, seed=0,
    )
    dataset = MetricDataset(points)
    eps_grid = [2.0, 2.5, 3.0, 3.5, 4.0]
    min_pts_grid = [5, 10]
    eps0 = min(eps_grid)

    # --- cold: rebuild the net for every setting --------------------
    t0 = time.perf_counter()
    cold_scores = {}
    for eps in eps_grid:
        for min_pts in min_pts_grid:
            result = MetricDBSCAN(eps, min_pts).fit(dataset)
            cold_scores[(eps, min_pts)] = adjusted_rand_index(truth, result.labels)
    cold_time = time.perf_counter() - t0

    # --- cached: one net at r̄ = ε0/2 serves the whole grid ----------
    t0 = time.perf_counter()
    net = MetricDBSCAN.precompute(dataset, r_bar=eps0 / 2.0)
    warm_scores = {}
    for eps in eps_grid:
        for min_pts in min_pts_grid:
            result = MetricDBSCAN(eps, min_pts).fit(dataset, net=net)
            warm_scores[(eps, min_pts)] = adjusted_rand_index(truth, result.labels)
    warm_time = time.perf_counter() - t0

    assert cold_scores == warm_scores, "cached net must not change results"

    print(f"grid: eps in {eps_grid}, MinPts in {min_pts_grid} "
          f"({len(cold_scores)} settings), n={dataset.n}\n")
    print(f"{'eps':>5} {'MinPts':>7} {'ARI':>7}")
    for (eps, min_pts), ari in sorted(cold_scores.items()):
        print(f"{eps:>5.1f} {min_pts:>7} {ari:>7.3f}")

    best = max(cold_scores, key=cold_scores.get)
    print(f"\nbest setting: eps={best[0]}, MinPts={best[1]} "
          f"(ARI={cold_scores[best]:.3f})")
    print(f"\ncold sweep   : {cold_time:6.2f}s (net rebuilt every time)")
    print(f"cached sweep : {warm_time:6.2f}s (one net, Remark 5)")
    print(f"speedup      : {cold_time / warm_time:5.1f}x")


if __name__ == "__main__":
    main()
