"""Sliding-window DBSCAN under concept drift (future-work extension).

The paper's conclusion lists "data deletion and drift" as open problems
for its streaming algorithm.  This example runs the repository's
windowed extension over a stream whose cluster abandons its region and
re-forms elsewhere, showing that

- queries in the live region resolve to a cluster,
- queries in the abandoned region return noise once the window has
  slid past it (exact deletion via per-bucket count subtraction),
- memory stays proportional to the window, not the stream.

Run:  python examples/windowed_drift.py
"""

import numpy as np

from repro import WindowedApproxDBSCAN


def main() -> None:
    rng = np.random.default_rng(0)
    model = WindowedApproxDBSCAN(
        eps=1.0, min_pts=8, rho=0.5, window=600, n_buckets=6
    )

    regions = [np.array([0.0, 0.0]), np.array([25.0, 0.0]), np.array([25.0, 25.0])]
    probe_points = regions + [np.array([100.0, 100.0])]
    probe_names = ["region A", "region B", "region C", "far away"]

    print("stream: 3 epochs x 800 points, the source jumps regions each epoch")
    print(f"window: {model.window} points, {model.n_buckets} buckets\n")
    header = f"{'after epoch':<12}" + "".join(f"{name:>12}" for name in probe_names) \
        + f"{'centers':>9}{'slots':>7}"
    print(header)
    print("-" * len(header))

    for epoch, center in enumerate(regions):
        for _ in range(800):
            model.insert(rng.normal(center, 0.3))
        answers = []
        for probe in probe_points:
            cluster = model.predict(probe)
            answers.append("noise" if cluster < 0 else f"cluster {cluster}")
        print(
            f"{epoch:<12}" + "".join(f"{a:>12}" for a in answers)
            + f"{model.n_live_centers:>9}{model.memory_points:>7}"
        )

    print(
        "\nEach epoch streams more points than the window holds, so the "
        "previous region is fully expired: its queries flip to noise while "
        "the live region stays clustered, and the payload slots are "
        "recycled rather than grown."
    )


if __name__ == "__main__":
    main()
