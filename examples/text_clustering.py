"""Clustering text under edit distance — the paper's non-Euclidean case.

Generates an AG-News-style synthetic corpus (DESIGN.md §3), clusters it
with the exact and ρ-approximate metric DBSCAN under Levenshtein
distance, and compares distance-evaluation counts against the original
DBSCAN — the machine-independent version of the paper's Figure 3
text-dataset speedups.

Run:  python examples/text_clustering.py
"""

from repro import ApproxMetricDBSCAN, EditDistanceMetric, MetricDBSCAN, MetricDataset
from repro.baselines import OriginalDBSCAN
from repro.datasets import make_text_clusters
from repro.evaluation import adjusted_rand_index


def main() -> None:
    strings, truth = make_text_clusters(
        n=400, n_clusters=4, seed_length=40, max_edits=4,
        outlier_fraction=0.02, seed=0,
    )
    eps, min_pts = 9.0, 5

    print(f"corpus: {len(strings)} strings, 4 planted topics, eps={eps}\n")
    print("sample strings:")
    for s in strings[:3]:
        print(f"  {s!r}")
    print()

    rows = []
    for name, solver in [
        ("Original DBSCAN", OriginalDBSCAN(eps, min_pts)),
        ("Our_Exact", MetricDBSCAN(eps, min_pts)),
        ("Our_Approx", ApproxMetricDBSCAN(eps, min_pts, rho=0.5)),
    ]:
        counted = MetricDataset(strings, EditDistanceMetric()).with_counting()
        result = solver.fit(counted)
        rows.append((
            name,
            result.n_clusters,
            result.n_noise,
            adjusted_rand_index(truth, result.labels),
            counted.metric.count,
        ))

    print(f"{'algorithm':<18} {'clusters':>8} {'noise':>6} {'ARI':>7} {'edit-distance evals':>20}")
    base = rows[0][4]
    for name, k, noise, ari, evals in rows:
        speedup = base / evals if evals else float("inf")
        print(f"{name:<18} {k:>8} {noise:>6} {ari:>7.3f} {evals:>20,}  ({speedup:4.1f}x fewer)")


if __name__ == "__main__":
    main()
